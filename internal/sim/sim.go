// Package sim is the slotted-time, store-and-forward network simulator the
// experiments run on. It models the paper's queueing environment directly:
//
//   - time advances in slots; a packet of length L occupies a directed link
//     for L consecutive slots (unit length packets take one slot, the
//     paper's analysis model);
//   - every node transmits on all of its outgoing links in parallel
//     (all-port model), each link serving an unbounded multi-class output
//     queue with head-of-line priority and FCFS order within a class;
//   - a packet that finishes arriving at the start of slot t can be
//     forwarded during slot t, so an uncontended packet's delay equals its
//     hop distance times its length;
//   - broadcast and unicast tasks arrive as Poisson streams and are routed
//     by a core.Scheme (STAR trees, priority classes, shortest paths).
//
// Statistics are collected for tasks born inside the measurement window
// [Warmup, Warmup+Measure); the simulation then runs Drain additional slots
// so most measured tasks can complete, and reports how many did not.
//
// The engine is event-driven: a link is examined only when its in-flight
// transmission completes or when a packet is enqueued on it while it is
// idle, so per-slot cost is proportional to actual link activity rather
// than to the total number of links (see DESIGN.md, "Engine internals &
// performance"). Ready links are served in ascending LinkID order each
// slot, which makes runs bit-identical to the historical full-scan engine
// for a fixed seed.
//
// An optional observability probe (Config.Probe, see internal/obs) receives
// enqueue/service/deliver/spawn/slot events; when unset each site costs one
// nil comparison, and attaching a probe never changes the trajectory.
package sim

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"math/rand/v2"
	"sync"
	"time"

	"prioritystar/internal/core"
	"prioritystar/internal/fault"
	"prioritystar/internal/obs"
	"prioritystar/internal/queue"
	"prioritystar/internal/stats"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// EngineVersion names the simulation semantics: any change that alters the
// trajectory or the measured statistics of a fixed (config, seed) pair must
// bump it. It is folded into spec.Fingerprint, so bumping it invalidates
// the daemon's content-addressed result cache and old checkpoint journals
// instead of letting stale results masquerade as current ones.
const EngineVersion = "prioritystar-sim/1"

// wheelSize is the timing-wheel span; packet service times are clamped to
// wheelSize-1 slots (Result.ClampedLengths counts occurrences, which are
// astronomically rare for the geometric lengths used by the experiments).
// It is a power of two so wheel positions use a mask, not a division.
const (
	wheelSize = 4096
	wheelMask = wheelSize - 1
)

// Config describes one simulation run.
type Config struct {
	Shape  *torus.Shape
	Scheme *core.Scheme
	Rates  traffic.Rates      // per-node task arrival rates
	Length traffic.LengthDist // packet length distribution (zero value = unit)
	Seed   uint64

	Warmup  int64 // slots before the measurement window
	Measure int64 // slots in the measurement window (required, > 0)
	Drain   int64 // slots after the window for measured tasks to finish

	// MaxBacklog aborts the run early when the total number of queued
	// packets exceeds it, which happens only for unstable operating points
	// (rho beyond the scheme's maximum throughput). 0 means the default of
	// 4 million packets.
	MaxBacklog int64

	// Faults injects link and node failures from a deterministic schedule
	// (see internal/fault). nil or an empty schedule leaves the engine on
	// its fault-free path, bit-identical to an engine without fault
	// support. With faults active, unicast packets route minimally-adaptively
	// around failed profitable links (waiting when no live alternative
	// exists) and broadcast copies that would cross a permanently failed
	// link are dropped with their whole subtree, recorded in
	// Result.LostCopies and Result.Reachability.
	Faults *fault.Schedule

	// Guard configures the runtime guards: the divergence watchdog and the
	// wall-clock timeout. The zero value disables both and leaves the
	// trajectory untouched.
	Guard Guard

	// Context, when non-nil, is polled every 1024 slots; once it is
	// cancelled the run stops and Run returns the context's error.
	Context context.Context

	// OnDeliver, when non-nil, is invoked for every packet arrival: each
	// broadcast copy received by a node and each unicast hop (Final marks
	// arrival at the unicast destination). Intended for tests and tracing;
	// it adds an indirect call per delivery.
	OnDeliver func(DeliverEvent)

	// Probe, when non-nil, receives every engine event (enqueue, service
	// start, delivery, task spawn, end of slot) for metrics and tracing;
	// see internal/obs. A nil probe costs exactly one pointer comparison
	// per event site, and attaching one never changes the simulated
	// trajectory: same-seed runs are bit-identical with and without it.
	Probe obs.Probe

	// ImpulseBroadcasts injects this many broadcast tasks per node at slot
	// 0, modelling the static multinode-broadcast task of the paper's
	// introduction (1 task per node = MNB). Combine with zero Rates and
	// zero Warmup to measure the makespan via Result.Broadcast.Max().
	ImpulseBroadcasts int
	// ImpulseTotalExchange, when true, injects one unicast from every node
	// to every other node at slot 0 — the static total-exchange (TE) task.
	ImpulseTotalExchange bool
	// SingleBroadcast, when true, injects exactly one broadcast task from
	// SingleBroadcastSource at slot 0 (the static single-broadcast task).
	SingleBroadcast       bool
	SingleBroadcastSource torus.Node
}

// DeliverEvent describes one packet arrival for Config.OnDeliver.
type DeliverEvent struct {
	Slot  int64
	Node  torus.Node
	Birth int64
	// Task is the broadcast task key for measured broadcast copies and -1
	// otherwise.
	Task int64
	// Broadcast is true for broadcast copies, false for unicast packets.
	Broadcast bool
	// Final is true when a unicast packet reached its destination (always
	// true for broadcast copies: every arrival is a delivery).
	Final bool
}

// Guard bundles the runtime guards of one run. The zero value disables every
// guard; an enabled guard never perturbs the trajectory of a run it does not
// terminate (guards read engine state but never touch the RNG).
type Guard struct {
	// DivergeBacklog terminates the run with StatusDiverged as soon as the
	// total backlog exceeds it. 0 disables the bound. Unlike
	// Config.MaxBacklog (an emergency brake yielding StatusTruncated),
	// this is the watchdog's deliberate "this point has left its stable
	// region" signal.
	DivergeBacklog int64

	// GrowthWindow enables the sustained-growth watchdog: every
	// GrowthWindow slots the total backlog is sampled, and when GrowthRuns
	// consecutive samples each exceed their predecessor by more than
	// GrowthSlack packets the run terminates with StatusDiverged. A run at
	// rho >= 1 adds Theta(deficit x links) packets per slot, so it trips
	// the watchdog within GrowthRuns windows instead of burning the whole
	// horizon; a stable run's backlog fluctuates around its mean and keeps
	// resetting the streak. 0 disables the check.
	GrowthWindow int64
	// GrowthRuns is the consecutive-growth streak length that declares
	// divergence. 0 means the default of 4.
	GrowthRuns int
	// GrowthSlack is the minimum per-window backlog increase that counts
	// as growth. 0 means the default of max(64, links/8).
	GrowthSlack int64

	// Timeout bounds the run's wall-clock time; when exceeded (polled
	// every 1024 slots) the run stops with StatusTimeout. 0 disables it.
	Timeout time.Duration
}

// active reports whether any watchdog check is enabled.
func (g *Guard) active() bool { return g.DivergeBacklog > 0 || g.GrowthWindow > 0 }

// DefaultGuard returns a divergence watchdog tuned for shape s: a backlog
// bound of 64 packets per link and a sustained-growth check every 250 slots.
func DefaultGuard(s *torus.Shape) Guard {
	return Guard{DivergeBacklog: int64(s.Links()) * 64, GrowthWindow: 250}
}

// Status classifies how a run ended.
type Status uint8

// Run statuses.
const (
	// StatusOK: the run completed its full horizon.
	StatusOK Status = iota
	// StatusTruncated: the backlog exceeded Config.MaxBacklog.
	StatusTruncated
	// StatusDiverged: the divergence watchdog (Config.Guard) fired.
	StatusDiverged
	// StatusTimeout: the wall-clock timeout (Config.Guard.Timeout) expired.
	StatusTimeout
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusTruncated:
		return "truncated"
	case StatusDiverged:
		return "diverged"
	case StatusTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

func (c *Config) totalSlots() int64 { return c.Warmup + c.Measure + c.Drain }

// Validate checks the configuration without running it. Run and Runner.Run
// call it first and surface its error verbatim.
func (c *Config) Validate() error {
	if c.Shape == nil || c.Scheme == nil {
		return fmt.Errorf("sim: nil shape or scheme")
	}
	if c.Shape.Dims() == 0 || c.Shape.Size() == 0 {
		return fmt.Errorf("sim: shape has no dimensions (construct shapes with torus.New)")
	}
	if c.Scheme.Shape != c.Shape {
		return fmt.Errorf("sim: scheme was built for %v, config uses %v", c.Scheme.Shape, c.Shape)
	}
	if math.IsNaN(c.Rates.LambdaB) || math.IsInf(c.Rates.LambdaB, 0) ||
		math.IsNaN(c.Rates.LambdaR) || math.IsInf(c.Rates.LambdaR, 0) {
		return fmt.Errorf("sim: arrival rates must be finite, got %+v", c.Rates)
	}
	if c.Rates.LambdaB < 0 || c.Rates.LambdaR < 0 {
		return fmt.Errorf("sim: negative arrival rates %+v", c.Rates)
	}
	if c.Measure <= 0 {
		return fmt.Errorf("sim: Measure must be positive, got %d", c.Measure)
	}
	if c.Warmup < 0 || c.Drain < 0 {
		return fmt.Errorf("sim: negative Warmup or Drain")
	}
	if g := &c.Guard; g.DivergeBacklog < 0 || g.GrowthWindow < 0 || g.GrowthRuns < 0 ||
		g.GrowthSlack < 0 || g.Timeout < 0 {
		return fmt.Errorf("sim: negative Guard field %+v", *g)
	}
	if err := c.Faults.Validate(c.Shape); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// Result holds the measured statistics of one run.
type Result struct {
	// Reception aggregates, per delivered copy of a measured broadcast
	// task, the time since task generation (the paper's reception delay).
	Reception stats.Welford
	// Broadcast aggregates, per completed measured broadcast task, the
	// time until the last node received its copy (broadcast delay).
	Broadcast stats.Welford
	// Unicast aggregates end-to-end delays of measured unicast packets.
	Unicast stats.Welford
	// QueueWait aggregates, per priority class, the output-queue waiting
	// time of packets entering service during the measurement window.
	QueueWait [3]stats.Welford

	GeneratedBroadcasts  int64 // measured broadcast tasks generated
	GeneratedUnicasts    int64 // measured unicast tasks generated
	IncompleteBroadcasts int64 // measured tasks not finished by the horizon
	IncompleteUnicasts   int64 // measured unicasts not delivered by the horizon

	// DimUtilization is the average utilization of a dimension-i link over
	// the measurement window; MaxDimUtilization and AvgUtilization
	// summarize it. For a balanced scheme AvgUtilization ~= rho and all
	// dimensions match.
	DimUtilization    []float64
	AvgUtilization    float64
	MaxDimUtilization float64

	BacklogStart int64   // queued packets when the window opened
	BacklogEnd   int64   // queued packets when the window closed
	BacklogSlope float64 // (end-start)/Measure, packets per slot
	MaxBacklog   int64   // peak queued packets observed
	// BacklogFirstQ and BacklogLastQ are the average backlog over the
	// first and last quarter of the measurement window; their difference
	// (BacklogTrend) is a noise-robust growth estimate used by Stable.
	BacklogFirstQ float64
	BacklogLastQ  float64
	BacklogTrend  float64

	// Truncated is true when the run was aborted by Config.MaxBacklog
	// (unstable operating point); delay statistics are then meaningless.
	// Status carries the same information with more detail.
	Truncated bool
	// ClampedLengths counts packets whose sampled service time exceeded
	// the timing wheel and was clamped.
	ClampedLengths int64

	// Status records how the run ended: StatusOK (full horizon),
	// StatusTruncated (Config.MaxBacklog tripped), StatusDiverged (the
	// watchdog in Config.Guard fired), or StatusTimeout (the wall-clock
	// bound expired). Delay statistics of non-OK runs cover only the
	// slots actually simulated.
	Status Status

	// LostCopies counts measured broadcast deliveries lost because a copy
	// (with its whole subtree) would have crossed a permanently failed
	// link. Zero unless Config.Faults injects permanent failures.
	LostCopies int64
	// DegradedTasks counts measured broadcast tasks that completed with at
	// least one lost copy; such tasks contribute to Reachability but not
	// to Broadcast (their last node never receives a copy).
	DegradedTasks int64
	// Reachability aggregates, per measured broadcast task completed under
	// an active fault schedule, the fraction of the other nodes that
	// received a copy (1.0 when nothing was lost). Empty for fault-free
	// runs.
	Reachability stats.Welford
}

// packetKind discriminates broadcast copies from unicast packets.
type packetKind uint8

const (
	kindBroadcast packetKind = iota
	kindUnicast
)

// packet is the in-network representation of one copy. It is kept small
// and copied by value through the queues.
type packet struct {
	birth    int64
	enq      int64 // enqueue time at the current output queue
	task     int64 // broadcast task key (measured tasks only; -1 otherwise)
	taskIdx  int32 // dense index into engine.tasks (measured broadcasts)
	dest     torus.Node
	tieMask  uint32
	length   int32
	kind     packetKind
	class    uint8
	ending   int8
	phase    int8
	dir      torus.Dir
	hopsLeft int16
	measured bool
}

// bcastState tracks one in-flight measured broadcast task. States live in a
// dense slice indexed by packet.taskIdx; completed slots are recycled
// through a free list, so steady-state measurement allocates no per-task
// memory. The task *key* (packet.task, surfaced via DeliverEvent.Task)
// stays a plain monotone counter and is never recycled.
type bcastState struct {
	birth     int64
	remaining int32
	lost      int32 // copies lost to permanently failed links
}

type engine struct {
	cfg     Config
	s       *torus.Shape
	sch     *core.Scheme
	rng     *rand.Rand
	res     *Result
	probe   obs.Probe // cached Config.Probe; nil-checked at every emit site
	now     int64
	wStart  int64
	wEnd    int64
	horizon int64

	queues    []queue.MultiClass[packet]
	classes   int          // priority classes per queue (for reuse checks)
	busyUntil []int64      // slot at which each link's transmission completes
	busySlots []int64      // busy slots within the window, per link
	linkDst   []torus.Node // shared per-shape table (torus.LinkTables)
	linkDim   []int32      // shared per-shape table (torus.LinkTables)

	// inflight[l] is the packet currently transmitting on link l; the
	// timing wheel stores only link IDs, so a completion event is 4 bytes
	// instead of a full packet copy. A link carries at most one packet at
	// a time, making one slot per link sufficient.
	inflight []packet
	wheel    [][]torus.LinkID

	// ready collects the links that may start a transmission this slot:
	// those whose in-flight packet just completed and those that received
	// a packet while idle.
	ready linkBitmap

	// Dense broadcast-task table indexed by packet.taskIdx; freeTasks
	// holds recycled indices, liveTasks counts tasks currently in flight,
	// and nextTask is the never-recycled key counter.
	tasks     []bcastState
	freeTasks []int32
	liveTasks int64
	nextTask  int64

	backlog int64
	hopBuf  []core.Hop
	maxBack int64

	// Backlog sampling for the trend estimate: sums over the first and
	// last quarters of the measurement window.
	firstQSum, lastQSum     float64
	firstQCount, lastQCount int64

	// Fault state. faults is nil for fault-free runs, keeping the hot
	// path at one nil check per site; fwheel parallels wheel and carries
	// recovery wake-ups for links found transiently down.
	faults   *fault.Compiled
	fwheel   [][]torus.LinkID
	adaptCur torus.Node // current node for the downFn closure
	downFn   func(dim int, dir torus.Dir) bool

	// arena, when non-nil, supplies the bulk per-replication buffers
	// (busyUntil, busySlots, inflight, ready bitmap) from a contiguous
	// struct-of-arrays block shared by every replication of a batch, so the
	// batched runner's lockstep sweep streams through adjacent memory
	// instead of pointer-chasing a cold heap per rep. nil (the sequential
	// runners) falls back to plain make.
	arena *batchArena

	// Guard state, resolved from cfg.Guard by reset.
	guardOn      bool
	growthRuns   int
	growthSlack  int64
	growthStreak int
	lastSample   int64
	nextGrowthAt int64
	ctx          context.Context
	deadline     time.Time
	checkWall    bool // poll ctx/deadline every 1024 slots
}

// Runner executes simulations while reusing the engine's internal buffers
// (queues, timing wheel, task table) across calls. A sweep that runs many
// simulations of the same shape on one goroutine should reuse a Runner:
// after the first run the hot path is allocation-free. The zero value is
// ready to use. A Runner is not safe for concurrent use; give each worker
// goroutine its own.
type Runner struct {
	e engine
}

// Run executes one simulation and returns its statistics. It is equivalent
// to the package-level Run but recycles internal buffers from previous
// calls; results are identical for identical Configs.
func (r *Runner) Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &r.e
	if err := e.reset(cfg); err != nil {
		return nil, err
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	e.finish()
	return e.res, nil
}

// runnerPool recycles engine buffers across package-level Run calls, so
// even callers that cannot hold a Runner (parallel sweep workers, one-shot
// probes) skip the per-run queue/wheel allocations after warm-up.
var runnerPool = sync.Pool{New: func() any { return new(Runner) }}

// Run executes one simulation and returns its statistics. Results depend
// only on Config (same seed, same trajectory); internal buffers are
// recycled through a pool.
func Run(cfg Config) (*Result, error) {
	r := runnerPool.Get().(*Runner)
	res, err := r.Run(cfg)
	r.e.release()
	runnerPool.Put(r)
	return res, err
}

// release drops references the engine no longer needs so a pooled Runner
// does not pin the caller's shape, scheme, callbacks, or results. Bulk
// value buffers (queues, wheel, tables) are kept for reuse.
func (e *engine) release() {
	e.cfg = Config{}
	e.s = nil
	e.sch = nil
	e.rng = nil
	e.res = nil
	e.probe = nil
	e.linkDst = nil
	e.linkDim = nil
	e.faults = nil
	e.downFn = nil
	e.ctx = nil
}

// Recover re-arms a Runner after a panic escaped one of its runs, keeping
// the warm bulk buffers (queues, timing wheel, busy tables) instead of
// discarding them. A panic can only interrupt the engine between statements,
// so every buffer keeps its structural invariants (slice lengths, ring
// bounds); the stale *contents* are exactly what reset() rebuilds at the
// start of the next run. Callers that recover a panic from Run should call
// Recover before reusing the Runner; sweep workers do, so one poisoned
// replication no longer costs the worker a cold reallocation of every
// buffer for its remaining work.
func (r *Runner) Recover() {
	e := &r.e
	for i := range e.queues {
		e.queues[i].Reset()
	}
	if e.wheel != nil {
		for i := range e.wheel {
			e.wheel[i] = e.wheel[i][:0]
		}
	}
	if e.fwheel != nil {
		for i := range e.fwheel {
			e.fwheel[i] = e.fwheel[i][:0]
		}
	}
	clear(e.busyUntil)
	clear(e.busySlots)
	clear(e.ready.l0)
	clear(e.ready.l1)
	e.tasks = e.tasks[:0]
	e.freeTasks = e.freeTasks[:0]
	e.release()
}

// reset prepares the engine for cfg, reusing buffers from any previous run
// when the link-slot count and class count match. It fails only when the
// fault schedule does not compile against the shape.
func (e *engine) reset(cfg Config) error {
	slots := cfg.Shape.LinkSlots()
	classes := cfg.Scheme.Discipline.Classes()

	e.cfg = cfg
	e.s = cfg.Shape
	e.sch = cfg.Scheme
	e.rng = rand.New(rand.NewPCG(cfg.Seed, 0x57a12357))
	e.res = &Result{} // escapes to the caller; never reused
	e.probe = cfg.Probe
	e.now = 0
	e.wStart = cfg.Warmup
	e.wEnd = cfg.Warmup + cfg.Measure
	e.horizon = cfg.totalSlots()
	e.backlog = 0
	e.liveTasks = 0
	e.firstQSum, e.lastQSum = 0, 0
	e.firstQCount, e.lastQCount = 0, 0
	e.maxBack = cfg.MaxBacklog
	if e.maxBack == 0 {
		e.maxBack = 4_000_000
	}

	if len(e.queues) == slots && e.classes == classes {
		for l := range e.queues {
			e.queues[l].Reset()
		}
	} else {
		e.queues = make([]queue.MultiClass[packet], 0, slots)
		for i := 0; i < slots; i++ {
			e.queues = append(e.queues, *queue.NewMultiClass[packet](classes))
		}
		e.classes = classes
	}
	if len(e.busyUntil) == slots {
		clear(e.busyUntil)
		clear(e.busySlots)
	} else {
		e.busyUntil = e.arena.int64s(slots)
		e.busySlots = e.arena.int64s(slots)
	}
	e.ready.init(slots, e.arena)
	e.linkDst, e.linkDim = e.s.LinkTables()
	if len(e.inflight) != slots {
		// No clearing on reuse: an inflight slot is read only when the
		// wheel holds the link's ID, and the wheel is truncated below.
		e.inflight = e.arena.packets(slots)
	}
	if e.wheel == nil {
		e.wheel = make([][]torus.LinkID, wheelSize)
	} else {
		for i := range e.wheel {
			e.wheel[i] = e.wheel[i][:0]
		}
	}
	e.tasks = e.tasks[:0]
	e.freeTasks = e.freeTasks[:0]
	e.nextTask = 0

	// Fault schedule: compiled only when non-empty, so fault-free runs
	// keep e.faults == nil and stay on the historical hot path.
	e.faults = nil
	e.downFn = nil
	if e.fwheel != nil {
		for i := range e.fwheel {
			e.fwheel[i] = e.fwheel[i][:0]
		}
	}
	if !cfg.Faults.Empty() {
		fc, err := cfg.Faults.Compile(cfg.Shape)
		if err != nil {
			return err
		}
		e.faults = fc
		e.downFn = e.adaptDown
		if e.fwheel == nil {
			e.fwheel = make([][]torus.LinkID, wheelSize)
		}
	}

	// Guards.
	g := cfg.Guard
	e.guardOn = g.active()
	e.growthRuns = g.GrowthRuns
	if e.growthRuns == 0 {
		e.growthRuns = 4
	}
	e.growthSlack = g.GrowthSlack
	if e.growthSlack == 0 {
		e.growthSlack = int64(e.s.Links() / 8)
		if e.growthSlack < 64 {
			e.growthSlack = 64
		}
	}
	e.growthStreak = 0
	e.lastSample = 0
	e.nextGrowthAt = g.GrowthWindow
	e.ctx = cfg.Context
	e.deadline = time.Time{}
	if g.Timeout > 0 {
		e.deadline = time.Now().Add(g.Timeout)
	}
	e.checkWall = e.ctx != nil || g.Timeout > 0
	return nil
}

// adaptDown reports whether the outgoing link of e.adaptCur along (dim, dir)
// is currently failed. It is bound once per run (e.downFn) so the adaptive
// unicast path does not allocate a closure per delivery.
func (e *engine) adaptDown(dim int, dir torus.Dir) bool {
	return e.faults.Down(e.s.Link(e.adaptCur, dim, dir), e.now)
}

// run is the slot loop. Each slot: deliver completed transmissions, wake
// links whose transient fault healed, inject new tasks, then start
// transmissions on the links marked ready. It returns a non-nil error only
// when Config.Context is cancelled; every other early exit is reported
// through Result.Status.
func (e *engine) run() error {
	for {
		done, err := e.step()
		if done || err != nil {
			return err
		}
	}
}

// step advances the simulation by exactly one slot and reports whether the
// run is over (horizon reached, or an early exit recorded in Result.Status).
// It is the unit of progress the batched runner interleaves across
// replications; run() is just a loop over it, so sequential and batched
// trajectories are identical by construction.
func (e *engine) step() (done bool, err error) {
	if e.now >= e.horizon {
		return true, nil
	}
	if e.checkWall && e.now&1023 == 0 {
		if e.ctx != nil {
			select {
			case <-e.ctx.Done():
				return true, e.ctx.Err()
			default:
			}
		}
		if !e.deadline.IsZero() && time.Now().After(e.deadline) {
			e.res.Status = StatusTimeout
			return true, nil
		}
	}
	if e.now == e.wStart {
		e.res.BacklogStart = e.backlog
	}
	e.deliverArrivals()
	if e.faults != nil {
		e.processRecoveries()
	}
	e.generate()
	e.serviceReady()
	if e.probe != nil {
		e.probe.SlotEnd(e.now, e.backlog)
	}
	if e.now == e.wEnd-1 {
		e.res.BacklogEnd = e.backlog
	}
	if e.now >= e.wStart && e.now < e.wEnd {
		quarter := (e.cfg.Measure + 3) / 4
		switch {
		case e.now < e.wStart+quarter:
			e.firstQSum += float64(e.backlog)
			e.firstQCount++
		case e.now >= e.wEnd-quarter:
			e.lastQSum += float64(e.backlog)
			e.lastQCount++
		}
	}
	if e.backlog > e.res.MaxBacklog {
		e.res.MaxBacklog = e.backlog
	}
	if e.backlog > e.maxBack {
		e.res.Truncated = true
		e.res.Status = StatusTruncated
		return true, nil
	}
	if e.guardOn && e.diverged() {
		e.res.Status = StatusDiverged
		return true, nil
	}
	e.now++
	return e.now >= e.horizon, nil
}

// diverged runs the watchdog checks for the slot that just finished. It only
// reads engine state, so an enabled watchdog never perturbs the trajectory
// of a run it does not terminate.
func (e *engine) diverged() bool {
	g := &e.cfg.Guard
	if g.DivergeBacklog > 0 && e.backlog > g.DivergeBacklog {
		return true
	}
	if g.GrowthWindow > 0 && e.now == e.nextGrowthAt {
		if e.backlog > e.lastSample+e.growthSlack {
			e.growthStreak++
		} else {
			e.growthStreak = 0
		}
		e.lastSample = e.backlog
		e.nextGrowthAt += g.GrowthWindow
		if e.growthStreak >= e.growthRuns {
			return true
		}
	}
	return false
}

// processRecoveries wakes the links whose transient fault was promised to
// heal this slot. A link still down (its wake-up was clamped to the wheel
// span) is rescheduled; a healed link is marked ready so serviceReady
// examines its queue this very slot.
func (e *engine) processRecoveries() {
	entries := e.fwheel[e.now&wheelMask]
	if len(entries) == 0 {
		return
	}
	e.fwheel[e.now&wheelMask] = entries[:0]
	// scheduleRecovery never targets the current wheel index (recovery
	// slots lie in (now, now+wheelSize)), so the append below cannot write
	// into the slice being ranged over.
	for _, l := range entries {
		if down, until := e.faults.DownUntil(l, e.now); down {
			if until >= 0 {
				e.scheduleRecovery(l, until)
			}
			continue
		}
		e.markReady(l)
	}
}

// scheduleRecovery enqueues a wake-up for link l at the given recovery slot,
// clamping it to the timing-wheel span (the wake-up then re-checks and
// reschedules).
func (e *engine) scheduleRecovery(l torus.LinkID, until int64) {
	if until > e.now+wheelMask {
		until = e.now + wheelMask
	}
	at := until & wheelMask
	e.fwheel[at] = append(e.fwheel[at], l)
}

// linkBitmap is a two-level bitmap over the link-slot index space: one bit
// per link in l0, one bit per nonzero l0 word in l1. It gives O(1)
// deduplicated marking and an ascending-order sweep whose cost is
// proportional to the number of marked words, which is what makes the
// event-driven service pass both cheap and deterministic (links are always
// visited in ascending LinkID order, matching the historical full scan).
type linkBitmap struct {
	l0 []uint64
	l1 []uint64
}

// init sizes the bitmap for the given number of link slots, reusing the
// previous words when the size matches (they are always left cleared by
// sweep, but clear defensively so a truncated run cannot leak marks). A
// non-nil arena supplies the words from the batch's shared SoA block.
func (b *linkBitmap) init(slots int, a *batchArena) {
	w0 := (slots + 63) / 64
	w1 := (w0 + 63) / 64
	if len(b.l0) == w0 {
		clear(b.l0)
		clear(b.l1)
		return
	}
	b.l0 = a.uint64s(w0)
	b.l1 = a.uint64s(w1)
}

func (b *linkBitmap) set(l torus.LinkID) {
	w := uint(l) >> 6
	b.l0[w] |= 1 << (uint(l) & 63)
	b.l1[w>>6] |= 1 << (w & 63)
}

// sweep calls fn for every marked link in ascending order, clearing the
// bitmap as it goes. fn must not mark new links.
func (b *linkBitmap) sweep(fn func(l torus.LinkID)) {
	for w1, m1 := range b.l1 {
		if m1 == 0 {
			continue
		}
		b.l1[w1] = 0
		for m1 != 0 {
			w0 := w1<<6 + bits.TrailingZeros64(m1)
			m1 &= m1 - 1
			m0 := b.l0[w0]
			b.l0[w0] = 0
			for m0 != 0 {
				fn(torus.LinkID(w0<<6 + bits.TrailingZeros64(m0)))
				m0 &= m0 - 1
			}
		}
	}
}

// markReady queues link l for examination by serviceReady this slot. Links
// are marked when their transmission completes and when they receive a
// packet while idle; together with the invariant that an idle link's queue
// is drained-or-busy after every serviceReady pass, this covers exactly the
// links the historical full scan would have served.
func (e *engine) markReady(l torus.LinkID) {
	e.ready.set(l)
}

// deliverArrivals processes packets whose transmission completes at the
// start of the current slot.
func (e *engine) deliverArrivals() {
	arrivals := e.wheel[e.now&wheelMask]
	if len(arrivals) == 0 {
		return
	}
	// Service can never append back into the current slot (lengths are in
	// [1, wheelSize)), so the backing array is safe to reuse immediately.
	e.wheel[e.now&wheelMask] = arrivals[:0]
	for _, l := range arrivals {
		e.markReady(l) // the link just went idle; it may have queue
		pkt := &e.inflight[l]
		node := e.linkDst[l]
		if pkt.kind == kindUnicast {
			e.deliverUnicast(node, pkt)
		} else {
			e.deliverBroadcast(node, pkt)
		}
	}
}

func (e *engine) deliverUnicast(node torus.Node, pkt *packet) {
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(DeliverEvent{
			Slot: e.now, Node: node, Birth: pkt.birth, Task: -1,
			Broadcast: false, Final: node == pkt.dest,
		})
	}
	if e.probe != nil {
		e.probe.Deliver(e.now, node, false, node == pkt.dest, e.now-pkt.birth)
	}
	if node == pkt.dest {
		if pkt.measured {
			e.res.Unicast.Add(float64(e.now - pkt.birth))
			e.res.IncompleteUnicasts--
		}
		return
	}
	e.routeUnicast(node, pkt)
}

// routeUnicast enqueues pkt on its next hop out of node. Fault-free runs use
// the deterministic-oblivious shortest path; with faults active the packet
// routes minimally adaptively: any live profitable link is taken (preferring
// the oblivious choice), and when every profitable link is down the packet
// waits on the preferred one.
func (e *engine) routeUnicast(node torus.Node, pkt *packet) {
	if e.faults == nil {
		dim, dir, _ := core.UnicastNextHop(e.s, node, pkt.dest, pkt.tieMask)
		e.enqueue(node, dim, dir, pkt)
		return
	}
	e.adaptCur = node
	dim, dir, _, done := core.UnicastNextHopAdaptive(e.s, node, pkt.dest, pkt.tieMask, e.downFn)
	if done {
		return
	}
	e.enqueue(node, dim, dir, pkt)
}

func (e *engine) deliverBroadcast(node torus.Node, pkt *packet) {
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(DeliverEvent{
			Slot: e.now, Node: node, Birth: pkt.birth, Task: pkt.task,
			Broadcast: true, Final: true,
		})
	}
	if e.probe != nil {
		e.probe.Deliver(e.now, node, true, true, e.now-pkt.birth)
	}
	if pkt.measured {
		e.res.Reception.Add(float64(e.now - pkt.birth))
		st := &e.tasks[pkt.taskIdx]
		st.remaining--
		if st.remaining == 0 {
			e.finishTask(pkt.taskIdx)
		}
	}
	e.hopBuf = core.BroadcastForward(e.s, int(pkt.ending), int(pkt.phase), pkt.dir, int(pkt.hopsLeft), e.rng, e.hopBuf[:0])
	e.forwardHops(node, pkt)
}

// finishTask closes the dense state slot of a measured broadcast task whose
// outstanding copies have all been delivered or lost. Fully delivered tasks
// record the broadcast delay as always; degraded tasks (lost > 0) are
// counted separately because their "last node" never receives a copy. Under
// an active fault schedule every completed task also records the fraction of
// nodes it reached.
func (e *engine) finishTask(idx int32) {
	st := &e.tasks[idx]
	if st.lost == 0 {
		e.res.Broadcast.Add(float64(e.now - st.birth))
	} else {
		e.res.DegradedTasks++
	}
	if e.faults != nil {
		total := float64(e.s.Size() - 1)
		e.res.Reachability.Add((total - float64(st.lost)) / total)
	}
	e.freeTasks = append(e.freeTasks, idx)
	e.liveTasks--
}

// dropSubtree accounts for a broadcast copy that would cross the permanently
// failed link l: the copy and every descendant it would have spawned are
// lost. The copy covers hopsLeft+1 nodes along its own ring, each of which
// would have seeded subtrees spanning all later phases of the task's
// dimension order.
func (e *engine) dropSubtree(l torus.LinkID, pkt *packet) {
	lost := int64(pkt.hopsLeft) + 1
	d := e.s.Dims()
	for q := int(pkt.phase) + 1; q < d; q++ {
		lost *= int64(e.s.Dim(core.OrderDim(d, int(pkt.ending), q)))
	}
	if e.probe != nil {
		e.probe.Fault(e.now, l, true, lost)
	}
	if !pkt.measured {
		return
	}
	e.res.LostCopies += lost
	st := &e.tasks[pkt.taskIdx]
	st.lost += int32(lost)
	st.remaining -= int32(lost)
	if st.remaining == 0 {
		e.finishTask(pkt.taskIdx)
	}
}

// forwardHops enqueues the hops currently in hopBuf on behalf of pkt.
func (e *engine) forwardHops(node torus.Node, pkt *packet) {
	for _, h := range e.hopBuf {
		next := *pkt
		next.phase = int8(h.Phase)
		next.dir = h.Dir
		next.hopsLeft = int16(h.HopsLeft)
		next.class = uint8(e.sch.BroadcastClass(h.Dim, int(pkt.ending)))
		e.enqueue(node, h.Dim, h.Dir, &next)
	}
}

func (e *engine) enqueue(node torus.Node, dim int, dir torus.Dir, pkt *packet) {
	l := e.s.Link(node, dim, dir)
	if e.faults != nil && pkt.kind == kindBroadcast && e.faults.Permanent(l) {
		// A broadcast copy follows a fixed tree; a permanently dead edge
		// severs its whole subtree. Transient faults merely delay: the
		// copy queues and waits for the link to heal.
		e.dropSubtree(l, pkt)
		return
	}
	slot := e.queues[l].PushSlot(int(pkt.class))
	*slot = *pkt
	slot.enq = e.now
	e.backlog++
	if e.probe != nil {
		e.probe.Enqueue(e.now, l, dim, int(pkt.class), e.queues[l].Len())
	}
	if e.busyUntil[l] <= e.now {
		e.markReady(l) // idle link gained work; examine it this slot
	}
}

// generate injects this slot's new tasks. Per-node independent Poisson
// streams are equivalent to one aggregate Poisson stream with uniformly
// random sources.
func (e *engine) generate() {
	n := float64(e.s.Size())
	measured := e.now >= e.wStart && e.now < e.wEnd
	if e.now == 0 {
		e.generateImpulse(measured)
	}
	for i := traffic.Poisson(e.rng, e.cfg.Rates.LambdaB*n); i > 0; i-- {
		e.spawnBroadcast(torus.Node(e.rng.IntN(e.s.Size())), measured)
	}
	for i := traffic.Poisson(e.rng, e.cfg.Rates.LambdaR*n); i > 0; i-- {
		src := torus.Node(e.rng.IntN(e.s.Size()))
		e.spawnUnicast(src, traffic.UniformDest(e.rng, e.s, src), measured)
	}
}

// generateImpulse injects the static communication tasks of Config at slot
// 0: ImpulseBroadcasts broadcast tasks per node and/or the total-exchange
// unicast pattern.
func (e *engine) generateImpulse(measured bool) {
	if e.cfg.SingleBroadcast {
		e.spawnBroadcast(e.cfg.SingleBroadcastSource, measured)
	}
	for k := 0; k < e.cfg.ImpulseBroadcasts; k++ {
		for u := torus.Node(0); int(u) < e.s.Size(); u++ {
			e.spawnBroadcast(u, measured)
		}
	}
	if e.cfg.ImpulseTotalExchange {
		for u := torus.Node(0); int(u) < e.s.Size(); u++ {
			for v := torus.Node(0); int(v) < e.s.Size(); v++ {
				if u != v {
					e.spawnUnicast(u, v, measured)
				}
			}
		}
	}
}

// newTask allocates a dense state slot for a measured broadcast task,
// recycling slots of completed tasks.
func (e *engine) newTask() int32 {
	st := bcastState{birth: e.now, remaining: int32(e.s.Size() - 1)}
	e.liveTasks++
	if n := len(e.freeTasks); n > 0 {
		k := e.freeTasks[n-1]
		e.freeTasks = e.freeTasks[:n-1]
		e.tasks[k] = st
		return k
	}
	e.tasks = append(e.tasks, st)
	return int32(len(e.tasks) - 1)
}

func (e *engine) spawnBroadcast(src torus.Node, measured bool) {
	if e.probe != nil {
		e.probe.Spawn(e.now, true, measured)
	}
	ending := e.sch.SampleEnding(e.rng)
	pkt := packet{
		birth:    e.now,
		task:     -1,
		length:   int32(e.sampleLength()),
		kind:     kindBroadcast,
		ending:   int8(ending),
		measured: measured,
	}
	if measured {
		pkt.task = e.nextTask
		e.nextTask++
		pkt.taskIdx = e.newTask()
		e.res.GeneratedBroadcasts++
	}
	e.hopBuf = core.BroadcastForward(e.s, ending, -1, torus.Plus, 0, e.rng, e.hopBuf[:0])
	e.forwardHops(src, &pkt)
}

func (e *engine) spawnUnicast(src, dest torus.Node, measured bool) {
	if e.probe != nil {
		e.probe.Spawn(e.now, false, measured)
	}
	pkt := packet{
		birth:    e.now,
		task:     -1,
		dest:     dest,
		tieMask:  core.SampleTieMask(e.rng, e.s.Dims()),
		length:   int32(e.sampleLength()),
		kind:     kindUnicast,
		class:    uint8(e.sch.UnicastClass()),
		measured: measured,
	}
	if measured {
		e.res.GeneratedUnicasts++
		e.res.IncompleteUnicasts++ // decremented on delivery
	}
	e.routeUnicast(src, &pkt)
}

func (e *engine) sampleLength() int {
	l := e.cfg.Length.Sample(e.rng)
	if l >= wheelSize {
		l = wheelSize - 1
		e.res.ClampedLengths++
	}
	return l
}

// serviceReady starts a new transmission on every ready link with queued
// packets. The bitmap sweep visits links in ascending LinkID order, which
// reproduces the exact service order of the historical full scan and keeps
// same-seed runs bit-identical.
func (e *engine) serviceReady() {
	t := e.now
	e.ready.sweep(func(l torus.LinkID) {
		q := &e.queues[l]
		if q.Len() == 0 {
			return // completion with an empty queue: link simply goes idle
		}
		if e.faults != nil {
			if down, until := e.faults.DownUntil(l, t); down {
				// The link is failed this slot: its queue waits. A
				// transient fault schedules a wake-up for the promised
				// recovery slot; a permanent one (until < 0) never heals,
				// so the queue is abandoned (adaptive unicast avoids such
				// links unless no profitable alternative exists).
				if e.probe != nil {
					e.probe.Fault(t, l, until < 0, 0)
				}
				if until >= 0 {
					e.scheduleRecovery(l, until)
				}
				return
			}
		}
		pkt, class, _ := q.PopRef()
		e.backlog--
		if t >= e.wStart && t < e.wEnd {
			e.res.QueueWait[class].Add(float64(t - pkt.enq))
		}
		if e.probe != nil {
			e.probe.Service(t, l, int(e.linkDim[l]), class, pkt.length, t-pkt.enq)
		}
		length := int64(pkt.length)
		e.busyUntil[l] = t + length
		e.busySlots[l] += overlap(t, t+length, e.wStart, e.wEnd)
		// The packet rides in the link's inflight slot until completion;
		// the wheel carries only the link ID. pkt points into the queue's
		// ring buffer and stays valid: nothing can Push to this queue
		// before the copy below.
		e.inflight[l] = *pkt
		at := (t + length) & wheelMask
		e.wheel[at] = append(e.wheel[at], l)
	})
}

// overlap returns the length of [a,b) ∩ [lo,hi).
func overlap(a, b, lo, hi int64) int64 {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}

// finish converts raw counters into Result aggregates.
func (e *engine) finish() {
	e.res.IncompleteBroadcasts = e.liveTasks
	d := e.s.Dims()
	busy := make([]int64, d)
	links := make([]int64, d)
	totalBusy := int64(0)
	for l := 0; l < e.s.LinkSlots(); l++ {
		if !e.s.ValidLink(torus.LinkID(l)) {
			continue
		}
		dim := e.linkDim[l]
		busy[dim] += e.busySlots[l]
		links[dim]++
		totalBusy += e.busySlots[l]
	}
	e.res.DimUtilization = make([]float64, d)
	measure := float64(e.cfg.Measure)
	for i := 0; i < d; i++ {
		if links[i] > 0 {
			e.res.DimUtilization[i] = float64(busy[i]) / (measure * float64(links[i]))
		}
		if e.res.DimUtilization[i] > e.res.MaxDimUtilization {
			e.res.MaxDimUtilization = e.res.DimUtilization[i]
		}
	}
	e.res.AvgUtilization = float64(totalBusy) / (measure * float64(e.s.Links()))
	e.res.BacklogSlope = float64(e.res.BacklogEnd-e.res.BacklogStart) / measure
	if e.firstQCount > 0 {
		e.res.BacklogFirstQ = e.firstQSum / float64(e.firstQCount)
	}
	if e.lastQCount > 0 {
		e.res.BacklogLastQ = e.lastQSum / float64(e.lastQCount)
	}
	e.res.BacklogTrend = e.res.BacklogLastQ - e.res.BacklogFirstQ
}

// Stable heuristically reports whether the run operated below saturation:
// not truncated, and the quarter-averaged backlog trend grew by less than
// one packet per link plus half the initial backlog level over the window.
// Averaging whole quarters (rather than comparing two instants) filters the
// large stationary fluctuations of high-but-stable loads, while genuine
// saturation — which adds Theta(deficit * links) packets per slot for the
// whole window — still trips the threshold immediately.
func (r *Result) Stable(s *torus.Shape) bool {
	if r.Truncated || r.Status != StatusOK {
		return false
	}
	return r.BacklogTrend < float64(s.Links())+r.BacklogFirstQ/2
}
