// Package sim is the slotted-time, store-and-forward network simulator the
// experiments run on. It models the paper's queueing environment directly:
//
//   - time advances in slots; a packet of length L occupies a directed link
//     for L consecutive slots (unit length packets take one slot, the
//     paper's analysis model);
//   - every node transmits on all of its outgoing links in parallel
//     (all-port model), each link serving an unbounded multi-class output
//     queue with head-of-line priority and FCFS order within a class;
//   - a packet that finishes arriving at the start of slot t can be
//     forwarded during slot t, so an uncontended packet's delay equals its
//     hop distance times its length;
//   - broadcast and unicast tasks arrive as Poisson streams and are routed
//     by a core.Scheme (STAR trees, priority classes, shortest paths).
//
// Statistics are collected for tasks born inside the measurement window
// [Warmup, Warmup+Measure); the simulation then runs Drain additional slots
// so most measured tasks can complete, and reports how many did not.
//
// The engine is event-driven: a link is examined only when its in-flight
// transmission completes or when a packet is enqueued on it while it is
// idle, so per-slot cost is proportional to actual link activity rather
// than to the total number of links (see DESIGN.md, "Engine internals &
// performance"). Ready links are served in ascending LinkID order each
// slot, which makes runs bit-identical to the historical full-scan engine
// for a fixed seed.
//
// An optional observability probe (Config.Probe, see internal/obs) receives
// enqueue/service/deliver/spawn/slot events; when unset each site costs one
// nil comparison, and attaching a probe never changes the trajectory.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
	"sync"

	"prioritystar/internal/core"
	"prioritystar/internal/obs"
	"prioritystar/internal/queue"
	"prioritystar/internal/stats"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// wheelSize is the timing-wheel span; packet service times are clamped to
// wheelSize-1 slots (Result.ClampedLengths counts occurrences, which are
// astronomically rare for the geometric lengths used by the experiments).
// It is a power of two so wheel positions use a mask, not a division.
const (
	wheelSize = 4096
	wheelMask = wheelSize - 1
)

// Config describes one simulation run.
type Config struct {
	Shape  *torus.Shape
	Scheme *core.Scheme
	Rates  traffic.Rates      // per-node task arrival rates
	Length traffic.LengthDist // packet length distribution (zero value = unit)
	Seed   uint64

	Warmup  int64 // slots before the measurement window
	Measure int64 // slots in the measurement window (required, > 0)
	Drain   int64 // slots after the window for measured tasks to finish

	// MaxBacklog aborts the run early when the total number of queued
	// packets exceeds it, which happens only for unstable operating points
	// (rho beyond the scheme's maximum throughput). 0 means the default of
	// 4 million packets.
	MaxBacklog int64

	// OnDeliver, when non-nil, is invoked for every packet arrival: each
	// broadcast copy received by a node and each unicast hop (Final marks
	// arrival at the unicast destination). Intended for tests and tracing;
	// it adds an indirect call per delivery.
	OnDeliver func(DeliverEvent)

	// Probe, when non-nil, receives every engine event (enqueue, service
	// start, delivery, task spawn, end of slot) for metrics and tracing;
	// see internal/obs. A nil probe costs exactly one pointer comparison
	// per event site, and attaching one never changes the simulated
	// trajectory: same-seed runs are bit-identical with and without it.
	Probe obs.Probe

	// ImpulseBroadcasts injects this many broadcast tasks per node at slot
	// 0, modelling the static multinode-broadcast task of the paper's
	// introduction (1 task per node = MNB). Combine with zero Rates and
	// zero Warmup to measure the makespan via Result.Broadcast.Max().
	ImpulseBroadcasts int
	// ImpulseTotalExchange, when true, injects one unicast from every node
	// to every other node at slot 0 — the static total-exchange (TE) task.
	ImpulseTotalExchange bool
	// SingleBroadcast, when true, injects exactly one broadcast task from
	// SingleBroadcastSource at slot 0 (the static single-broadcast task).
	SingleBroadcast       bool
	SingleBroadcastSource torus.Node
}

// DeliverEvent describes one packet arrival for Config.OnDeliver.
type DeliverEvent struct {
	Slot  int64
	Node  torus.Node
	Birth int64
	// Task is the broadcast task key for measured broadcast copies and -1
	// otherwise.
	Task int64
	// Broadcast is true for broadcast copies, false for unicast packets.
	Broadcast bool
	// Final is true when a unicast packet reached its destination (always
	// true for broadcast copies: every arrival is a delivery).
	Final bool
}

func (c *Config) totalSlots() int64 { return c.Warmup + c.Measure + c.Drain }

func (c *Config) validate() error {
	if c.Shape == nil || c.Scheme == nil {
		return fmt.Errorf("sim: nil shape or scheme")
	}
	if c.Scheme.Shape != c.Shape {
		return fmt.Errorf("sim: scheme was built for %v, config uses %v", c.Scheme.Shape, c.Shape)
	}
	if c.Rates.LambdaB < 0 || c.Rates.LambdaR < 0 {
		return fmt.Errorf("sim: negative arrival rates %+v", c.Rates)
	}
	if c.Measure <= 0 {
		return fmt.Errorf("sim: Measure must be positive, got %d", c.Measure)
	}
	if c.Warmup < 0 || c.Drain < 0 {
		return fmt.Errorf("sim: negative Warmup or Drain")
	}
	return nil
}

// Result holds the measured statistics of one run.
type Result struct {
	// Reception aggregates, per delivered copy of a measured broadcast
	// task, the time since task generation (the paper's reception delay).
	Reception stats.Welford
	// Broadcast aggregates, per completed measured broadcast task, the
	// time until the last node received its copy (broadcast delay).
	Broadcast stats.Welford
	// Unicast aggregates end-to-end delays of measured unicast packets.
	Unicast stats.Welford
	// QueueWait aggregates, per priority class, the output-queue waiting
	// time of packets entering service during the measurement window.
	QueueWait [3]stats.Welford

	GeneratedBroadcasts  int64 // measured broadcast tasks generated
	GeneratedUnicasts    int64 // measured unicast tasks generated
	IncompleteBroadcasts int64 // measured tasks not finished by the horizon
	IncompleteUnicasts   int64 // measured unicasts not delivered by the horizon

	// DimUtilization is the average utilization of a dimension-i link over
	// the measurement window; MaxDimUtilization and AvgUtilization
	// summarize it. For a balanced scheme AvgUtilization ~= rho and all
	// dimensions match.
	DimUtilization    []float64
	AvgUtilization    float64
	MaxDimUtilization float64

	BacklogStart int64   // queued packets when the window opened
	BacklogEnd   int64   // queued packets when the window closed
	BacklogSlope float64 // (end-start)/Measure, packets per slot
	MaxBacklog   int64   // peak queued packets observed
	// BacklogFirstQ and BacklogLastQ are the average backlog over the
	// first and last quarter of the measurement window; their difference
	// (BacklogTrend) is a noise-robust growth estimate used by Stable.
	BacklogFirstQ float64
	BacklogLastQ  float64
	BacklogTrend  float64

	// Truncated is true when the run was aborted by Config.MaxBacklog
	// (unstable operating point); delay statistics are then meaningless.
	Truncated bool
	// ClampedLengths counts packets whose sampled service time exceeded
	// the timing wheel and was clamped.
	ClampedLengths int64
}

// packetKind discriminates broadcast copies from unicast packets.
type packetKind uint8

const (
	kindBroadcast packetKind = iota
	kindUnicast
)

// packet is the in-network representation of one copy. It is kept small
// and copied by value through the queues.
type packet struct {
	birth    int64
	enq      int64 // enqueue time at the current output queue
	task     int64 // broadcast task key (measured tasks only; -1 otherwise)
	taskIdx  int32 // dense index into engine.tasks (measured broadcasts)
	dest     torus.Node
	tieMask  uint32
	length   int32
	kind     packetKind
	class    uint8
	ending   int8
	phase    int8
	dir      torus.Dir
	hopsLeft int16
	measured bool
}

// bcastState tracks one in-flight measured broadcast task. States live in a
// dense slice indexed by packet.taskIdx; completed slots are recycled
// through a free list, so steady-state measurement allocates no per-task
// memory. The task *key* (packet.task, surfaced via DeliverEvent.Task)
// stays a plain monotone counter and is never recycled.
type bcastState struct {
	birth     int64
	remaining int32
}

type engine struct {
	cfg     Config
	s       *torus.Shape
	sch     *core.Scheme
	rng     *rand.Rand
	res     *Result
	probe   obs.Probe // cached Config.Probe; nil-checked at every emit site
	now     int64
	wStart  int64
	wEnd    int64
	horizon int64

	queues    []queue.MultiClass[packet]
	classes   int     // priority classes per queue (for reuse checks)
	busyUntil []int64 // slot at which each link's transmission completes
	busySlots []int64 // busy slots within the window, per link
	linkDst   []torus.Node // shared per-shape table (torus.LinkTables)
	linkDim   []int32      // shared per-shape table (torus.LinkTables)

	// inflight[l] is the packet currently transmitting on link l; the
	// timing wheel stores only link IDs, so a completion event is 4 bytes
	// instead of a full packet copy. A link carries at most one packet at
	// a time, making one slot per link sufficient.
	inflight []packet
	wheel    [][]torus.LinkID

	// ready collects the links that may start a transmission this slot:
	// those whose in-flight packet just completed and those that received
	// a packet while idle.
	ready linkBitmap

	// Dense broadcast-task table indexed by packet.taskIdx; freeTasks
	// holds recycled indices, liveTasks counts tasks currently in flight,
	// and nextTask is the never-recycled key counter.
	tasks     []bcastState
	freeTasks []int32
	liveTasks int64
	nextTask  int64

	backlog int64
	hopBuf  []core.Hop
	maxBack int64

	// Backlog sampling for the trend estimate: sums over the first and
	// last quarters of the measurement window.
	firstQSum, lastQSum     float64
	firstQCount, lastQCount int64
}

// Runner executes simulations while reusing the engine's internal buffers
// (queues, timing wheel, task table) across calls. A sweep that runs many
// simulations of the same shape on one goroutine should reuse a Runner:
// after the first run the hot path is allocation-free. The zero value is
// ready to use. A Runner is not safe for concurrent use; give each worker
// goroutine its own.
type Runner struct {
	e engine
}

// Run executes one simulation and returns its statistics. It is equivalent
// to the package-level Run but recycles internal buffers from previous
// calls; results are identical for identical Configs.
func (r *Runner) Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &r.e
	e.reset(cfg)
	e.run()
	e.finish()
	return e.res, nil
}

// runnerPool recycles engine buffers across package-level Run calls, so
// even callers that cannot hold a Runner (parallel sweep workers, one-shot
// probes) skip the per-run queue/wheel allocations after warm-up.
var runnerPool = sync.Pool{New: func() any { return new(Runner) }}

// Run executes one simulation and returns its statistics. Results depend
// only on Config (same seed, same trajectory); internal buffers are
// recycled through a pool.
func Run(cfg Config) (*Result, error) {
	r := runnerPool.Get().(*Runner)
	res, err := r.Run(cfg)
	r.e.release()
	runnerPool.Put(r)
	return res, err
}

// release drops references the engine no longer needs so a pooled Runner
// does not pin the caller's shape, scheme, callbacks, or results. Bulk
// value buffers (queues, wheel, tables) are kept for reuse.
func (e *engine) release() {
	e.cfg = Config{}
	e.s = nil
	e.sch = nil
	e.rng = nil
	e.res = nil
	e.probe = nil
	e.linkDst = nil
	e.linkDim = nil
}

// reset prepares the engine for cfg, reusing buffers from any previous run
// when the link-slot count and class count match.
func (e *engine) reset(cfg Config) {
	slots := cfg.Shape.LinkSlots()
	classes := cfg.Scheme.Discipline.Classes()

	e.cfg = cfg
	e.s = cfg.Shape
	e.sch = cfg.Scheme
	e.rng = rand.New(rand.NewPCG(cfg.Seed, 0x57a12357))
	e.res = &Result{} // escapes to the caller; never reused
	e.probe = cfg.Probe
	e.now = 0
	e.wStart = cfg.Warmup
	e.wEnd = cfg.Warmup + cfg.Measure
	e.horizon = cfg.totalSlots()
	e.backlog = 0
	e.liveTasks = 0
	e.firstQSum, e.lastQSum = 0, 0
	e.firstQCount, e.lastQCount = 0, 0
	e.maxBack = cfg.MaxBacklog
	if e.maxBack == 0 {
		e.maxBack = 4_000_000
	}

	if len(e.queues) == slots && e.classes == classes {
		for l := range e.queues {
			e.queues[l].Reset()
		}
	} else {
		e.queues = make([]queue.MultiClass[packet], 0, slots)
		for i := 0; i < slots; i++ {
			e.queues = append(e.queues, *queue.NewMultiClass[packet](classes))
		}
		e.classes = classes
	}
	if len(e.busyUntil) == slots {
		clear(e.busyUntil)
		clear(e.busySlots)
	} else {
		e.busyUntil = make([]int64, slots)
		e.busySlots = make([]int64, slots)
	}
	e.ready.init(slots)
	e.linkDst, e.linkDim = e.s.LinkTables()
	if len(e.inflight) != slots {
		// No clearing on reuse: an inflight slot is read only when the
		// wheel holds the link's ID, and the wheel is truncated below.
		e.inflight = make([]packet, slots)
	}
	if e.wheel == nil {
		e.wheel = make([][]torus.LinkID, wheelSize)
	} else {
		for i := range e.wheel {
			e.wheel[i] = e.wheel[i][:0]
		}
	}
	e.tasks = e.tasks[:0]
	e.freeTasks = e.freeTasks[:0]
	e.nextTask = 0
}

// run is the slot loop. Each slot: deliver completed transmissions,
// inject new tasks, then start transmissions on the links marked ready.
func (e *engine) run() {
	for e.now = 0; e.now < e.horizon; e.now++ {
		if e.now == e.wStart {
			e.res.BacklogStart = e.backlog
		}
		e.deliverArrivals()
		e.generate()
		e.serviceReady()
		if e.probe != nil {
			e.probe.SlotEnd(e.now, e.backlog)
		}
		if e.now == e.wEnd-1 {
			e.res.BacklogEnd = e.backlog
		}
		if e.now >= e.wStart && e.now < e.wEnd {
			quarter := (e.cfg.Measure + 3) / 4
			switch {
			case e.now < e.wStart+quarter:
				e.firstQSum += float64(e.backlog)
				e.firstQCount++
			case e.now >= e.wEnd-quarter:
				e.lastQSum += float64(e.backlog)
				e.lastQCount++
			}
		}
		if e.backlog > e.res.MaxBacklog {
			e.res.MaxBacklog = e.backlog
		}
		if e.backlog > e.maxBack {
			e.res.Truncated = true
			break
		}
	}
}

// linkBitmap is a two-level bitmap over the link-slot index space: one bit
// per link in l0, one bit per nonzero l0 word in l1. It gives O(1)
// deduplicated marking and an ascending-order sweep whose cost is
// proportional to the number of marked words, which is what makes the
// event-driven service pass both cheap and deterministic (links are always
// visited in ascending LinkID order, matching the historical full scan).
type linkBitmap struct {
	l0 []uint64
	l1 []uint64
}

// init sizes the bitmap for the given number of link slots, reusing the
// previous words when the size matches (they are always left cleared by
// sweep, but clear defensively so a truncated run cannot leak marks).
func (b *linkBitmap) init(slots int) {
	w0 := (slots + 63) / 64
	w1 := (w0 + 63) / 64
	if len(b.l0) == w0 {
		clear(b.l0)
		clear(b.l1)
		return
	}
	b.l0 = make([]uint64, w0)
	b.l1 = make([]uint64, w1)
}

func (b *linkBitmap) set(l torus.LinkID) {
	w := uint(l) >> 6
	b.l0[w] |= 1 << (uint(l) & 63)
	b.l1[w>>6] |= 1 << (w & 63)
}

// sweep calls fn for every marked link in ascending order, clearing the
// bitmap as it goes. fn must not mark new links.
func (b *linkBitmap) sweep(fn func(l torus.LinkID)) {
	for w1, m1 := range b.l1 {
		if m1 == 0 {
			continue
		}
		b.l1[w1] = 0
		for m1 != 0 {
			w0 := w1<<6 + bits.TrailingZeros64(m1)
			m1 &= m1 - 1
			m0 := b.l0[w0]
			b.l0[w0] = 0
			for m0 != 0 {
				fn(torus.LinkID(w0<<6 + bits.TrailingZeros64(m0)))
				m0 &= m0 - 1
			}
		}
	}
}

// markReady queues link l for examination by serviceReady this slot. Links
// are marked when their transmission completes and when they receive a
// packet while idle; together with the invariant that an idle link's queue
// is drained-or-busy after every serviceReady pass, this covers exactly the
// links the historical full scan would have served.
func (e *engine) markReady(l torus.LinkID) {
	e.ready.set(l)
}

// deliverArrivals processes packets whose transmission completes at the
// start of the current slot.
func (e *engine) deliverArrivals() {
	arrivals := e.wheel[e.now&wheelMask]
	if len(arrivals) == 0 {
		return
	}
	// Service can never append back into the current slot (lengths are in
	// [1, wheelSize)), so the backing array is safe to reuse immediately.
	e.wheel[e.now&wheelMask] = arrivals[:0]
	for _, l := range arrivals {
		e.markReady(l) // the link just went idle; it may have queue
		pkt := &e.inflight[l]
		node := e.linkDst[l]
		if pkt.kind == kindUnicast {
			e.deliverUnicast(node, pkt)
		} else {
			e.deliverBroadcast(node, pkt)
		}
	}
}

func (e *engine) deliverUnicast(node torus.Node, pkt *packet) {
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(DeliverEvent{
			Slot: e.now, Node: node, Birth: pkt.birth, Task: -1,
			Broadcast: false, Final: node == pkt.dest,
		})
	}
	if e.probe != nil {
		e.probe.Deliver(e.now, node, false, node == pkt.dest, e.now-pkt.birth)
	}
	if node == pkt.dest {
		if pkt.measured {
			e.res.Unicast.Add(float64(e.now - pkt.birth))
			e.res.IncompleteUnicasts--
		}
		return
	}
	dim, dir, _ := core.UnicastNextHop(e.s, node, pkt.dest, pkt.tieMask)
	e.enqueue(node, dim, dir, pkt)
}

func (e *engine) deliverBroadcast(node torus.Node, pkt *packet) {
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(DeliverEvent{
			Slot: e.now, Node: node, Birth: pkt.birth, Task: pkt.task,
			Broadcast: true, Final: true,
		})
	}
	if e.probe != nil {
		e.probe.Deliver(e.now, node, true, true, e.now-pkt.birth)
	}
	if pkt.measured {
		e.res.Reception.Add(float64(e.now - pkt.birth))
		st := &e.tasks[pkt.taskIdx]
		st.remaining--
		if st.remaining == 0 {
			e.res.Broadcast.Add(float64(e.now - st.birth))
			e.freeTasks = append(e.freeTasks, pkt.taskIdx)
			e.liveTasks--
		}
	}
	e.hopBuf = core.BroadcastForward(e.s, int(pkt.ending), int(pkt.phase), pkt.dir, int(pkt.hopsLeft), e.rng, e.hopBuf[:0])
	e.forwardHops(node, pkt)
}

// forwardHops enqueues the hops currently in hopBuf on behalf of pkt.
func (e *engine) forwardHops(node torus.Node, pkt *packet) {
	for _, h := range e.hopBuf {
		next := *pkt
		next.phase = int8(h.Phase)
		next.dir = h.Dir
		next.hopsLeft = int16(h.HopsLeft)
		next.class = uint8(e.sch.BroadcastClass(h.Dim, int(pkt.ending)))
		e.enqueue(node, h.Dim, h.Dir, &next)
	}
}

func (e *engine) enqueue(node torus.Node, dim int, dir torus.Dir, pkt *packet) {
	l := e.s.Link(node, dim, dir)
	slot := e.queues[l].PushSlot(int(pkt.class))
	*slot = *pkt
	slot.enq = e.now
	e.backlog++
	if e.probe != nil {
		e.probe.Enqueue(e.now, l, dim, int(pkt.class), e.queues[l].Len())
	}
	if e.busyUntil[l] <= e.now {
		e.markReady(l) // idle link gained work; examine it this slot
	}
}

// generate injects this slot's new tasks. Per-node independent Poisson
// streams are equivalent to one aggregate Poisson stream with uniformly
// random sources.
func (e *engine) generate() {
	n := float64(e.s.Size())
	measured := e.now >= e.wStart && e.now < e.wEnd
	if e.now == 0 {
		e.generateImpulse(measured)
	}
	for i := traffic.Poisson(e.rng, e.cfg.Rates.LambdaB*n); i > 0; i-- {
		e.spawnBroadcast(torus.Node(e.rng.IntN(e.s.Size())), measured)
	}
	for i := traffic.Poisson(e.rng, e.cfg.Rates.LambdaR*n); i > 0; i-- {
		src := torus.Node(e.rng.IntN(e.s.Size()))
		e.spawnUnicast(src, traffic.UniformDest(e.rng, e.s, src), measured)
	}
}

// generateImpulse injects the static communication tasks of Config at slot
// 0: ImpulseBroadcasts broadcast tasks per node and/or the total-exchange
// unicast pattern.
func (e *engine) generateImpulse(measured bool) {
	if e.cfg.SingleBroadcast {
		e.spawnBroadcast(e.cfg.SingleBroadcastSource, measured)
	}
	for k := 0; k < e.cfg.ImpulseBroadcasts; k++ {
		for u := torus.Node(0); int(u) < e.s.Size(); u++ {
			e.spawnBroadcast(u, measured)
		}
	}
	if e.cfg.ImpulseTotalExchange {
		for u := torus.Node(0); int(u) < e.s.Size(); u++ {
			for v := torus.Node(0); int(v) < e.s.Size(); v++ {
				if u != v {
					e.spawnUnicast(u, v, measured)
				}
			}
		}
	}
}

// newTask allocates a dense state slot for a measured broadcast task,
// recycling slots of completed tasks.
func (e *engine) newTask() int32 {
	st := bcastState{birth: e.now, remaining: int32(e.s.Size() - 1)}
	e.liveTasks++
	if n := len(e.freeTasks); n > 0 {
		k := e.freeTasks[n-1]
		e.freeTasks = e.freeTasks[:n-1]
		e.tasks[k] = st
		return k
	}
	e.tasks = append(e.tasks, st)
	return int32(len(e.tasks) - 1)
}

func (e *engine) spawnBroadcast(src torus.Node, measured bool) {
	if e.probe != nil {
		e.probe.Spawn(e.now, true, measured)
	}
	ending := e.sch.SampleEnding(e.rng)
	pkt := packet{
		birth:    e.now,
		task:     -1,
		length:   int32(e.sampleLength()),
		kind:     kindBroadcast,
		ending:   int8(ending),
		measured: measured,
	}
	if measured {
		pkt.task = e.nextTask
		e.nextTask++
		pkt.taskIdx = e.newTask()
		e.res.GeneratedBroadcasts++
	}
	e.hopBuf = core.BroadcastForward(e.s, ending, -1, torus.Plus, 0, e.rng, e.hopBuf[:0])
	e.forwardHops(src, &pkt)
}

func (e *engine) spawnUnicast(src, dest torus.Node, measured bool) {
	if e.probe != nil {
		e.probe.Spawn(e.now, false, measured)
	}
	pkt := packet{
		birth:    e.now,
		task:     -1,
		dest:     dest,
		tieMask:  core.SampleTieMask(e.rng, e.s.Dims()),
		length:   int32(e.sampleLength()),
		kind:     kindUnicast,
		class:    uint8(e.sch.UnicastClass()),
		measured: measured,
	}
	if measured {
		e.res.GeneratedUnicasts++
		e.res.IncompleteUnicasts++ // decremented on delivery
	}
	dim, dir, _ := core.UnicastNextHop(e.s, src, dest, pkt.tieMask)
	e.enqueue(src, dim, dir, &pkt)
}

func (e *engine) sampleLength() int {
	l := e.cfg.Length.Sample(e.rng)
	if l >= wheelSize {
		l = wheelSize - 1
		e.res.ClampedLengths++
	}
	return l
}

// serviceReady starts a new transmission on every ready link with queued
// packets. The bitmap sweep visits links in ascending LinkID order, which
// reproduces the exact service order of the historical full scan and keeps
// same-seed runs bit-identical.
func (e *engine) serviceReady() {
	t := e.now
	e.ready.sweep(func(l torus.LinkID) {
		q := &e.queues[l]
		if q.Len() == 0 {
			return // completion with an empty queue: link simply goes idle
		}
		pkt, class, _ := q.PopRef()
		e.backlog--
		if t >= e.wStart && t < e.wEnd {
			e.res.QueueWait[class].Add(float64(t - pkt.enq))
		}
		if e.probe != nil {
			e.probe.Service(t, l, int(e.linkDim[l]), class, pkt.length, t-pkt.enq)
		}
		length := int64(pkt.length)
		e.busyUntil[l] = t + length
		e.busySlots[l] += overlap(t, t+length, e.wStart, e.wEnd)
		// The packet rides in the link's inflight slot until completion;
		// the wheel carries only the link ID. pkt points into the queue's
		// ring buffer and stays valid: nothing can Push to this queue
		// before the copy below.
		e.inflight[l] = *pkt
		at := (t + length) & wheelMask
		e.wheel[at] = append(e.wheel[at], l)
	})
}

// overlap returns the length of [a,b) ∩ [lo,hi).
func overlap(a, b, lo, hi int64) int64 {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}

// finish converts raw counters into Result aggregates.
func (e *engine) finish() {
	e.res.IncompleteBroadcasts = e.liveTasks
	d := e.s.Dims()
	busy := make([]int64, d)
	links := make([]int64, d)
	totalBusy := int64(0)
	for l := 0; l < e.s.LinkSlots(); l++ {
		if !e.s.ValidLink(torus.LinkID(l)) {
			continue
		}
		dim := e.linkDim[l]
		busy[dim] += e.busySlots[l]
		links[dim]++
		totalBusy += e.busySlots[l]
	}
	e.res.DimUtilization = make([]float64, d)
	measure := float64(e.cfg.Measure)
	for i := 0; i < d; i++ {
		if links[i] > 0 {
			e.res.DimUtilization[i] = float64(busy[i]) / (measure * float64(links[i]))
		}
		if e.res.DimUtilization[i] > e.res.MaxDimUtilization {
			e.res.MaxDimUtilization = e.res.DimUtilization[i]
		}
	}
	e.res.AvgUtilization = float64(totalBusy) / (measure * float64(e.s.Links()))
	e.res.BacklogSlope = float64(e.res.BacklogEnd-e.res.BacklogStart) / measure
	if e.firstQCount > 0 {
		e.res.BacklogFirstQ = e.firstQSum / float64(e.firstQCount)
	}
	if e.lastQCount > 0 {
		e.res.BacklogLastQ = e.lastQSum / float64(e.lastQCount)
	}
	e.res.BacklogTrend = e.res.BacklogLastQ - e.res.BacklogFirstQ
}

// Stable heuristically reports whether the run operated below saturation:
// not truncated, and the quarter-averaged backlog trend grew by less than
// one packet per link plus half the initial backlog level over the window.
// Averaging whole quarters (rather than comparing two instants) filters the
// large stationary fluctuations of high-but-stable loads, while genuine
// saturation — which adds Theta(deficit * links) packets per slot for the
// whole window — still trips the threshold immediately.
func (r *Result) Stable(s *torus.Shape) bool {
	if r.Truncated {
		return false
	}
	return r.BacklogTrend < float64(s.Links())+r.BacklogFirstQ/2
}
