// Package sim is the slotted-time, store-and-forward network simulator the
// experiments run on. It models the paper's queueing environment directly:
//
//   - time advances in slots; a packet of length L occupies a directed link
//     for L consecutive slots (unit length packets take one slot, the
//     paper's analysis model);
//   - every node transmits on all of its outgoing links in parallel
//     (all-port model), each link serving an unbounded multi-class output
//     queue with head-of-line priority and FCFS order within a class;
//   - a packet that finishes arriving at the start of slot t can be
//     forwarded during slot t, so an uncontended packet's delay equals its
//     hop distance times its length;
//   - broadcast and unicast tasks arrive as Poisson streams and are routed
//     by a core.Scheme (STAR trees, priority classes, shortest paths).
//
// Statistics are collected for tasks born inside the measurement window
// [Warmup, Warmup+Measure); the simulation then runs Drain additional slots
// so most measured tasks can complete, and reports how many did not.
package sim

import (
	"fmt"
	"math/rand/v2"

	"prioritystar/internal/core"
	"prioritystar/internal/queue"
	"prioritystar/internal/stats"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// wheelSize is the timing-wheel span; packet service times are clamped to
// wheelSize-1 slots (Result.ClampedLengths counts occurrences, which are
// astronomically rare for the geometric lengths used by the experiments).
const wheelSize = 4096

// Config describes one simulation run.
type Config struct {
	Shape  *torus.Shape
	Scheme *core.Scheme
	Rates  traffic.Rates      // per-node task arrival rates
	Length traffic.LengthDist // packet length distribution (zero value = unit)
	Seed   uint64

	Warmup  int64 // slots before the measurement window
	Measure int64 // slots in the measurement window (required, > 0)
	Drain   int64 // slots after the window for measured tasks to finish

	// MaxBacklog aborts the run early when the total number of queued
	// packets exceeds it, which happens only for unstable operating points
	// (rho beyond the scheme's maximum throughput). 0 means the default of
	// 4 million packets.
	MaxBacklog int64

	// OnDeliver, when non-nil, is invoked for every packet arrival: each
	// broadcast copy received by a node and each unicast hop (Final marks
	// arrival at the unicast destination). Intended for tests and tracing;
	// it adds an indirect call per delivery.
	OnDeliver func(DeliverEvent)

	// ImpulseBroadcasts injects this many broadcast tasks per node at slot
	// 0, modelling the static multinode-broadcast task of the paper's
	// introduction (1 task per node = MNB). Combine with zero Rates and
	// zero Warmup to measure the makespan via Result.Broadcast.Max().
	ImpulseBroadcasts int
	// ImpulseTotalExchange, when true, injects one unicast from every node
	// to every other node at slot 0 — the static total-exchange (TE) task.
	ImpulseTotalExchange bool
	// SingleBroadcast, when true, injects exactly one broadcast task from
	// SingleBroadcastSource at slot 0 (the static single-broadcast task).
	SingleBroadcast       bool
	SingleBroadcastSource torus.Node
}

// DeliverEvent describes one packet arrival for Config.OnDeliver.
type DeliverEvent struct {
	Slot  int64
	Node  torus.Node
	Birth int64
	// Task is the broadcast task key for measured broadcast copies and -1
	// otherwise.
	Task int64
	// Broadcast is true for broadcast copies, false for unicast packets.
	Broadcast bool
	// Final is true when a unicast packet reached its destination (always
	// true for broadcast copies: every arrival is a delivery).
	Final bool
}

func (c *Config) totalSlots() int64 { return c.Warmup + c.Measure + c.Drain }

func (c *Config) validate() error {
	if c.Shape == nil || c.Scheme == nil {
		return fmt.Errorf("sim: nil shape or scheme")
	}
	if c.Scheme.Shape != c.Shape {
		return fmt.Errorf("sim: scheme was built for %v, config uses %v", c.Scheme.Shape, c.Shape)
	}
	if c.Rates.LambdaB < 0 || c.Rates.LambdaR < 0 {
		return fmt.Errorf("sim: negative arrival rates %+v", c.Rates)
	}
	if c.Measure <= 0 {
		return fmt.Errorf("sim: Measure must be positive, got %d", c.Measure)
	}
	if c.Warmup < 0 || c.Drain < 0 {
		return fmt.Errorf("sim: negative Warmup or Drain")
	}
	return nil
}

// Result holds the measured statistics of one run.
type Result struct {
	// Reception aggregates, per delivered copy of a measured broadcast
	// task, the time since task generation (the paper's reception delay).
	Reception stats.Welford
	// Broadcast aggregates, per completed measured broadcast task, the
	// time until the last node received its copy (broadcast delay).
	Broadcast stats.Welford
	// Unicast aggregates end-to-end delays of measured unicast packets.
	Unicast stats.Welford
	// QueueWait aggregates, per priority class, the output-queue waiting
	// time of packets entering service during the measurement window.
	QueueWait [3]stats.Welford

	GeneratedBroadcasts  int64 // measured broadcast tasks generated
	GeneratedUnicasts    int64 // measured unicast tasks generated
	IncompleteBroadcasts int64 // measured tasks not finished by the horizon
	IncompleteUnicasts   int64 // measured unicasts not delivered by the horizon

	// DimUtilization is the average utilization of a dimension-i link over
	// the measurement window; MaxDimUtilization and AvgUtilization
	// summarize it. For a balanced scheme AvgUtilization ~= rho and all
	// dimensions match.
	DimUtilization    []float64
	AvgUtilization    float64
	MaxDimUtilization float64

	BacklogStart int64   // queued packets when the window opened
	BacklogEnd   int64   // queued packets when the window closed
	BacklogSlope float64 // (end-start)/Measure, packets per slot
	MaxBacklog   int64   // peak queued packets observed
	// BacklogFirstQ and BacklogLastQ are the average backlog over the
	// first and last quarter of the measurement window; their difference
	// (BacklogTrend) is a noise-robust growth estimate used by Stable.
	BacklogFirstQ float64
	BacklogLastQ  float64
	BacklogTrend  float64

	// Truncated is true when the run was aborted by Config.MaxBacklog
	// (unstable operating point); delay statistics are then meaningless.
	Truncated bool
	// ClampedLengths counts packets whose sampled service time exceeded
	// the timing wheel and was clamped.
	ClampedLengths int64
}

// packetKind discriminates broadcast copies from unicast packets.
type packetKind uint8

const (
	kindBroadcast packetKind = iota
	kindUnicast
)

// packet is the in-network representation of one copy. It is kept small
// and copied by value through the queues.
type packet struct {
	birth    int64
	enq      int64 // enqueue time at the current output queue
	task     int64 // broadcast task key (measured tasks only; -1 otherwise)
	dest     torus.Node
	tieMask  uint32
	length   int32
	kind     packetKind
	class    uint8
	ending   int8
	phase    int8
	dir      torus.Dir
	hopsLeft int16
	measured bool
}

type arrival struct {
	link torus.LinkID
	pkt  packet
}

type bcastState struct {
	birth     int64
	remaining int32
}

type engine struct {
	cfg     Config
	s       *torus.Shape
	sch     *core.Scheme
	rng     *rand.Rand
	res     *Result
	now     int64
	wStart  int64
	wEnd    int64
	horizon int64

	queues    []queue.MultiClass[packet]
	busyUntil []int64
	busySlots []int64 // busy slots within the window, per link
	linkDst   []torus.Node
	wheel     [][]arrival
	tasks     map[int64]*bcastState
	nextTask  int64
	backlog   int64
	hopBuf    []core.Hop
	maxBack   int64

	// Backlog sampling for the trend estimate: sums over the first and
	// last quarters of the measurement window.
	firstQSum, lastQSum     float64
	firstQCount, lastQCount int64
}

// Run executes one simulation and returns its statistics.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	e := &engine{
		cfg:     cfg,
		s:       cfg.Shape,
		sch:     cfg.Scheme,
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x57a12357)),
		res:     &Result{},
		wStart:  cfg.Warmup,
		wEnd:    cfg.Warmup + cfg.Measure,
		horizon: cfg.totalSlots(),
		tasks:   make(map[int64]*bcastState),
		maxBack: cfg.MaxBacklog,
	}
	if e.maxBack == 0 {
		e.maxBack = 4_000_000
	}
	slots := e.s.LinkSlots()
	e.queues = make([]queue.MultiClass[packet], 0, slots)
	for i := 0; i < slots; i++ {
		e.queues = append(e.queues, *queue.NewMultiClass[packet](e.sch.Discipline.Classes()))
	}
	e.busyUntil = make([]int64, slots)
	e.busySlots = make([]int64, slots)
	e.linkDst = make([]torus.Node, slots)
	for l := 0; l < slots; l++ {
		if e.s.ValidLink(torus.LinkID(l)) {
			e.linkDst[l] = e.s.LinkDst(torus.LinkID(l))
		}
	}
	e.wheel = make([][]arrival, wheelSize)

	for e.now = 0; e.now < e.horizon; e.now++ {
		if e.now == e.wStart {
			e.res.BacklogStart = e.backlog
		}
		e.deliverArrivals()
		e.generate()
		e.service()
		if e.now == e.wEnd-1 {
			e.res.BacklogEnd = e.backlog
		}
		if e.now >= e.wStart && e.now < e.wEnd {
			quarter := (e.cfg.Measure + 3) / 4
			switch {
			case e.now < e.wStart+quarter:
				e.firstQSum += float64(e.backlog)
				e.firstQCount++
			case e.now >= e.wEnd-quarter:
				e.lastQSum += float64(e.backlog)
				e.lastQCount++
			}
		}
		if e.backlog > e.res.MaxBacklog {
			e.res.MaxBacklog = e.backlog
		}
		if e.backlog > e.maxBack {
			e.res.Truncated = true
			break
		}
	}
	e.finish()
	return e.res, nil
}

// deliverArrivals processes packets whose transmission completes at the
// start of the current slot.
func (e *engine) deliverArrivals() {
	slot := e.now % wheelSize
	arrivals := e.wheel[slot]
	// Service can never append back into the current slot (lengths are in
	// [1, wheelSize)), so the backing array is safe to reuse immediately.
	e.wheel[slot] = arrivals[:0]
	for i := range arrivals {
		a := &arrivals[i]
		node := e.linkDst[a.link]
		if a.pkt.kind == kindUnicast {
			e.deliverUnicast(node, a.pkt)
		} else {
			e.deliverBroadcast(node, a.pkt)
		}
	}
}

func (e *engine) deliverUnicast(node torus.Node, pkt packet) {
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(DeliverEvent{
			Slot: e.now, Node: node, Birth: pkt.birth, Task: -1,
			Broadcast: false, Final: node == pkt.dest,
		})
	}
	if node == pkt.dest {
		if pkt.measured {
			e.res.Unicast.Add(float64(e.now - pkt.birth))
			e.res.IncompleteUnicasts--
		}
		return
	}
	dim, dir, _ := core.UnicastNextHop(e.s, node, pkt.dest, pkt.tieMask)
	e.enqueue(node, dim, dir, pkt)
}

func (e *engine) deliverBroadcast(node torus.Node, pkt packet) {
	if e.cfg.OnDeliver != nil {
		e.cfg.OnDeliver(DeliverEvent{
			Slot: e.now, Node: node, Birth: pkt.birth, Task: pkt.task,
			Broadcast: true, Final: true,
		})
	}
	if pkt.measured {
		e.res.Reception.Add(float64(e.now - pkt.birth))
		if st, ok := e.tasks[pkt.task]; ok {
			st.remaining--
			if st.remaining == 0 {
				e.res.Broadcast.Add(float64(e.now - st.birth))
				delete(e.tasks, pkt.task)
			}
		}
	}
	e.hopBuf = core.BroadcastForward(e.s, int(pkt.ending), int(pkt.phase), pkt.dir, int(pkt.hopsLeft), e.rng, e.hopBuf[:0])
	e.forwardHops(node, pkt)
}

// forwardHops enqueues the hops currently in hopBuf on behalf of pkt.
func (e *engine) forwardHops(node torus.Node, pkt packet) {
	for _, h := range e.hopBuf {
		next := pkt
		next.phase = int8(h.Phase)
		next.dir = h.Dir
		next.hopsLeft = int16(h.HopsLeft)
		next.class = uint8(e.sch.BroadcastClass(h.Dim, int(pkt.ending)))
		e.enqueue(node, h.Dim, h.Dir, next)
	}
}

func (e *engine) enqueue(node torus.Node, dim int, dir torus.Dir, pkt packet) {
	pkt.enq = e.now
	l := e.s.Link(node, dim, dir)
	e.queues[l].Push(int(pkt.class), pkt)
	e.backlog++
}

// generate injects this slot's new tasks. Per-node independent Poisson
// streams are equivalent to one aggregate Poisson stream with uniformly
// random sources.
func (e *engine) generate() {
	n := float64(e.s.Size())
	measured := e.now >= e.wStart && e.now < e.wEnd
	if e.now == 0 {
		e.generateImpulse(measured)
	}
	for i := traffic.Poisson(e.rng, e.cfg.Rates.LambdaB*n); i > 0; i-- {
		e.spawnBroadcast(torus.Node(e.rng.IntN(e.s.Size())), measured)
	}
	for i := traffic.Poisson(e.rng, e.cfg.Rates.LambdaR*n); i > 0; i-- {
		src := torus.Node(e.rng.IntN(e.s.Size()))
		e.spawnUnicast(src, traffic.UniformDest(e.rng, e.s, src), measured)
	}
}

// generateImpulse injects the static communication tasks of Config at slot
// 0: ImpulseBroadcasts broadcast tasks per node and/or the total-exchange
// unicast pattern.
func (e *engine) generateImpulse(measured bool) {
	if e.cfg.SingleBroadcast {
		e.spawnBroadcast(e.cfg.SingleBroadcastSource, measured)
	}
	for k := 0; k < e.cfg.ImpulseBroadcasts; k++ {
		for u := torus.Node(0); int(u) < e.s.Size(); u++ {
			e.spawnBroadcast(u, measured)
		}
	}
	if e.cfg.ImpulseTotalExchange {
		for u := torus.Node(0); int(u) < e.s.Size(); u++ {
			for v := torus.Node(0); int(v) < e.s.Size(); v++ {
				if u != v {
					e.spawnUnicast(u, v, measured)
				}
			}
		}
	}
}

func (e *engine) spawnBroadcast(src torus.Node, measured bool) {
	ending := e.sch.SampleEnding(e.rng)
	pkt := packet{
		birth:    e.now,
		task:     -1,
		length:   int32(e.sampleLength()),
		kind:     kindBroadcast,
		ending:   int8(ending),
		measured: measured,
	}
	if measured {
		pkt.task = e.nextTask
		e.nextTask++
		e.tasks[pkt.task] = &bcastState{birth: e.now, remaining: int32(e.s.Size() - 1)}
		e.res.GeneratedBroadcasts++
	}
	e.hopBuf = core.BroadcastForward(e.s, ending, -1, torus.Plus, 0, e.rng, e.hopBuf[:0])
	e.forwardHops(src, pkt)
}

func (e *engine) spawnUnicast(src, dest torus.Node, measured bool) {
	pkt := packet{
		birth:    e.now,
		task:     -1,
		dest:     dest,
		tieMask:  core.SampleTieMask(e.rng, e.s.Dims()),
		length:   int32(e.sampleLength()),
		kind:     kindUnicast,
		class:    uint8(e.sch.UnicastClass()),
		measured: measured,
	}
	if measured {
		e.res.GeneratedUnicasts++
		e.res.IncompleteUnicasts++ // decremented on delivery
	}
	dim, dir, _ := core.UnicastNextHop(e.s, src, dest, pkt.tieMask)
	e.enqueue(src, dim, dir, pkt)
}

func (e *engine) sampleLength() int {
	l := e.cfg.Length.Sample(e.rng)
	if l >= wheelSize {
		l = wheelSize - 1
		e.res.ClampedLengths++
	}
	return l
}

// service starts a new transmission on every idle link with queued packets.
func (e *engine) service() {
	t := e.now
	for l := range e.queues {
		if e.busyUntil[l] > t {
			continue
		}
		q := &e.queues[l]
		if q.Len() == 0 {
			continue
		}
		pkt, class, _ := q.Pop()
		e.backlog--
		if t >= e.wStart && t < e.wEnd {
			e.res.QueueWait[class].Add(float64(t - pkt.enq))
		}
		length := int64(pkt.length)
		e.busyUntil[l] = t + length
		e.busySlots[l] += overlap(t, t+length, e.wStart, e.wEnd)
		at := (t + length) % wheelSize
		e.wheel[at] = append(e.wheel[at], arrival{link: torus.LinkID(l), pkt: pkt})
	}
}

// overlap returns the length of [a,b) ∩ [lo,hi).
func overlap(a, b, lo, hi int64) int64 {
	if a < lo {
		a = lo
	}
	if b > hi {
		b = hi
	}
	if b <= a {
		return 0
	}
	return b - a
}

// finish converts raw counters into Result aggregates.
func (e *engine) finish() {
	e.res.IncompleteBroadcasts = int64(len(e.tasks))
	d := e.s.Dims()
	busy := make([]int64, d)
	links := make([]int64, d)
	totalBusy := int64(0)
	for l := 0; l < e.s.LinkSlots(); l++ {
		if !e.s.ValidLink(torus.LinkID(l)) {
			continue
		}
		dim := e.s.LinkDim(torus.LinkID(l))
		busy[dim] += e.busySlots[l]
		links[dim]++
		totalBusy += e.busySlots[l]
	}
	e.res.DimUtilization = make([]float64, d)
	measure := float64(e.cfg.Measure)
	for i := 0; i < d; i++ {
		if links[i] > 0 {
			e.res.DimUtilization[i] = float64(busy[i]) / (measure * float64(links[i]))
		}
		if e.res.DimUtilization[i] > e.res.MaxDimUtilization {
			e.res.MaxDimUtilization = e.res.DimUtilization[i]
		}
	}
	e.res.AvgUtilization = float64(totalBusy) / (measure * float64(e.s.Links()))
	e.res.BacklogSlope = float64(e.res.BacklogEnd-e.res.BacklogStart) / measure
	if e.firstQCount > 0 {
		e.res.BacklogFirstQ = e.firstQSum / float64(e.firstQCount)
	}
	if e.lastQCount > 0 {
		e.res.BacklogLastQ = e.lastQSum / float64(e.lastQCount)
	}
	e.res.BacklogTrend = e.res.BacklogLastQ - e.res.BacklogFirstQ
}

// Stable heuristically reports whether the run operated below saturation:
// not truncated, and the quarter-averaged backlog trend grew by less than
// one packet per link plus half the initial backlog level over the window.
// Averaging whole quarters (rather than comparing two instants) filters the
// large stationary fluctuations of high-but-stable loads, while genuine
// saturation — which adds Theta(deficit * links) packets per slot for the
// whole window — still trips the threshold immediately.
func (r *Result) Stable(s *torus.Shape) bool {
	if r.Truncated {
		return false
	}
	return r.BacklogTrend < float64(s.Links())+r.BacklogFirstQ/2
}
