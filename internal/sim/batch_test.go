package sim

import (
	"reflect"
	"strings"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/fault"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// seqResults runs each (cfg, seed) pair through a sequential Runner, the
// reference the batched engine must match bit for bit.
func seqResults(t *testing.T, base Config, seeds []uint64) []*Result {
	t.Helper()
	var r Runner
	out := make([]*Result, len(seeds))
	for i, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		res, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("sequential rep %d: %v", i, err)
		}
		out[i] = res
	}
	return out
}

// assertBatchMatches runs the batch at the given worker count and compares
// every replication's full Result against the sequential reference.
func assertBatchMatches(t *testing.T, name string, base Config, seeds []uint64, workers int) {
	t.Helper()
	want := seqResults(t, base, seeds)
	got, err := RunBatch(Batch{Base: base, Seeds: seeds, Workers: workers})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(got) != len(seeds) {
		t.Fatalf("%s: %d outcomes for %d seeds", name, len(got), len(seeds))
	}
	for i, rr := range got {
		if rr.Err != nil {
			t.Fatalf("%s rep %d: %v", name, i, rr.Err)
		}
		if !reflect.DeepEqual(rr.Result, want[i]) {
			t.Errorf("%s rep %d (workers=%d): batched result differs from sequential:\nbatched:    %+v\nsequential: %+v",
				name, i, workers, rr.Result, want[i])
		}
	}
}

// TestBatchBitIdenticalToSequential is the batched engine's core contract:
// per-rep Results must match sequential same-seed runs exactly, across
// shapes, loads, disciplines, length distributions, and worker counts.
func TestBatchBitIdenticalToSequential(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"8x8/rho0.2", detCase(t, []int{8, 8}, 0.2, 1, core.TwoLevel, 1, 0)},
		{"8x8/rho0.9/mixed", detCase(t, []int{8, 8}, 0.9, 0.5, core.TwoLevel, 1, 0)},
		{"4x5/fcfs", detCase(t, []int{4, 5}, 0.5, 0.7, core.FCFS, 1, 0)},
		{"4x4x8/3level", detCase(t, []int{4, 4, 8}, 0.6, 0.5, core.ThreeLevel, 1, 0)},
		{"hypercube/geom", detCase(t, []int{2, 2, 2, 2, 2}, 0.7, 1, core.TwoLevel, 4, 0)},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 3} {
			assertBatchMatches(t, tc.name, tc.cfg, seeds, workers)
		}
	}
}

// TestBatchMatchesUnderFaults covers the fault-injected paths: permanent
// link kills (subtree loss, reachability accounting) and transient
// MTBF/MTTR faults (recovery wheel) must survive batching bit for bit.
func TestBatchMatchesUnderFaults(t *testing.T) {
	seeds := []uint64{11, 12, 13, 14, 15}
	perm := detCase(t, []int{4, 4}, 0.3, 0.8, core.TwoLevel, 1, 0)
	perm.Faults = &fault.Schedule{Seed: 3, RandomLinks: 2}
	assertBatchMatches(t, "perm-faults", perm, seeds, 2)

	trans := detCase(t, []int{4, 4}, 0.4, 1, core.FCFS, 1, 0)
	trans.Faults = &fault.Schedule{Seed: 5, MTBF: 300, MTTR: 30}
	assertBatchMatches(t, "transient-faults", trans, seeds, 2)
}

// TestBatchMatchesGuardTerminated covers replications the divergence
// watchdog cuts short: a saturated operating point must end with the same
// StatusDiverged result, at the same slot, in both engines.
func TestBatchMatchesGuardTerminated(t *testing.T) {
	s := torus.MustNew(4, 4)
	rates, err := traffic.RatesForRho(s, 1.5, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.NewScheme(s, core.TwoLevel, core.BalancedRotation, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Shape: s, Scheme: sch, Rates: rates,
		Warmup: 200, Measure: 2000, Drain: 0,
		Guard: DefaultGuard(s),
	}
	seeds := []uint64{21, 22, 23}
	want := seqResults(t, cfg, seeds)
	for _, w := range want {
		if w.Status != StatusDiverged {
			t.Fatalf("reference run did not diverge (status %s); pick a hotter rho", w.Status)
		}
	}
	assertBatchMatches(t, "guard-diverged", cfg, seeds, 2)
}

// TestBatchMixedOutcomes mixes a diverging rep set with a stable one in
// consecutive batches on one BatchRunner, proving buffer reuse across
// batches leaks nothing (the batched analogue of Runner reuse tests).
func TestBatchRunnerReuseAcrossBatches(t *testing.T) {
	var br BatchRunner
	cases := []Config{
		detCase(t, []int{8, 8}, 0.8, 1, core.TwoLevel, 1, 0),
		detCase(t, []int{4, 5}, 0.3, 0.5, core.FCFS, 1, 0),     // shape + class change
		detCase(t, []int{8, 8}, 0.2, 1, core.ThreeLevel, 1, 0), // back, more classes
	}
	seeds := []uint64{31, 32, 33, 34}
	for i, cfg := range cases {
		want := seqResults(t, cfg, seeds)
		got, err := br.Run(Batch{Base: cfg, Seeds: seeds, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for j, rr := range got {
			if rr.Err != nil {
				t.Fatalf("batch %d rep %d: %v", i, j, rr.Err)
			}
			if !reflect.DeepEqual(rr.Result, want[j]) {
				t.Errorf("batch %d rep %d: reused BatchRunner diverged from sequential", i, j)
			}
		}
	}
}

// TestBatchPanicIsolated: a replication whose callback panics reports the
// panic as its own error; sibling replications in the same stripe finish
// normally and still match their sequential references.
func TestBatchPanicIsolated(t *testing.T) {
	cfg := detCase(t, []int{4, 4}, 0.3, 1, core.TwoLevel, 1, 0)
	seeds := []uint64{41, 42, 43}
	want := seqResults(t, cfg, seeds)

	// A poisoned batch: every delivery panics, so each rep dies on its own
	// first delivery and must report its own recovered panic.
	var br BatchRunner
	boom := cfg
	boom.OnDeliver = func(DeliverEvent) { panic("boom") }
	out, err := br.Run(Batch{Base: boom, Seeds: seeds, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range out {
		if rr.Err == nil || !strings.Contains(rr.Err.Error(), "panicked") {
			t.Fatalf("rep %d: panic not captured: %+v", i, rr)
		}
	}

	// A fresh batch on the same runner (same engines, same buffers) is
	// unaffected by the poisoned one.
	got, err := br.Run(Batch{Base: cfg, Seeds: seeds, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, rr := range got {
		if rr.Err != nil {
			t.Fatal(rr.Err)
		}
		if !reflect.DeepEqual(rr.Result, want[i]) {
			t.Errorf("rep %d after panic batch differs from sequential", i)
		}
	}
}

// TestBatchValidation rejects empty and invalid batches up front.
func TestBatchValidation(t *testing.T) {
	if _, err := RunBatch(Batch{}); err == nil {
		t.Error("empty batch accepted")
	}
	bad := Batch{Base: Config{}, Seeds: []uint64{1}}
	if _, err := RunBatch(bad); err == nil {
		t.Error("invalid base config accepted")
	}
}
