package sim

import (
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// TestObserverBroadcastUniqueness uses the delivery hook to verify the
// spanning-tree property *under contention*: no measured broadcast task
// ever delivers twice to the same node, and completed tasks reach exactly
// N-1 nodes.
func TestObserverBroadcastUniqueness(t *testing.T) {
	s := torus.MustNew(4, 8)
	rates, err := traffic.RatesForRho(s, 0.8, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		task int64
		node torus.Node
	}
	seen := make(map[key]bool)
	perTask := make(map[int64]int)
	res, err := Run(Config{
		Shape: s, Scheme: sch, Rates: rates, Seed: 21,
		Warmup: 500, Measure: 3000, Drain: 2000,
		OnDeliver: func(ev DeliverEvent) {
			if !ev.Broadcast || ev.Task < 0 {
				return
			}
			k := key{ev.Task, ev.Node}
			if seen[k] {
				t.Fatalf("task %d delivered twice to node %d", ev.Task, ev.Node)
			}
			seen[k] = true
			perTask[ev.Task]++
			if ev.Slot <= ev.Birth {
				t.Fatalf("delivery at slot %d not after birth %d", ev.Slot, ev.Birth)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	complete := 0
	for task, n := range perTask {
		if n > s.Size()-1 {
			t.Fatalf("task %d delivered %d copies > N-1", task, n)
		}
		if n == s.Size()-1 {
			complete++
		}
	}
	if int64(complete) != res.Broadcast.Count() {
		t.Errorf("observer saw %d complete tasks, result says %d", complete, res.Broadcast.Count())
	}
}

// TestObserverUnicastFinalCount: Final events match the recorded unicast
// deliveries plus unmeasured (warm-up/drain-born) ones.
func TestObserverUnicastFinalCount(t *testing.T) {
	s := torus.MustNew(4, 4)
	rates, err := traffic.RatesForRho(s, 0.5, 0, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	finals, hops := 0, 0
	res, err := Run(Config{
		Shape: s, Scheme: sch, Rates: rates, Seed: 22,
		Warmup: 200, Measure: 2000, Drain: 1000,
		OnDeliver: func(ev DeliverEvent) {
			if ev.Broadcast {
				t.Fatal("broadcast event in a unicast-only run")
			}
			if ev.Final {
				finals++
			} else {
				hops++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(finals) < res.Unicast.Count() {
		t.Errorf("observer finals %d < measured deliveries %d", finals, res.Unicast.Count())
	}
	// Average path length ~2.13 on 4x4, so intermediate hops exist.
	if hops == 0 {
		t.Error("expected intermediate unicast hops")
	}
}
