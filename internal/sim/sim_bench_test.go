package sim

import (
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// benchEngine measures raw engine throughput (simulated slots per run) for
// one topology/load combination.
func benchEngine(b *testing.B, dims []int, rho float64) {
	s := torus.MustNew(dims...)
	rates, err := traffic.RatesForRho(s, rho, 1, 1, balance.ExactDistance)
	if err != nil {
		b.Fatal(err)
	}
	sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		b.Fatal(err)
	}
	const slots = 2000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Shape: s, Scheme: sch, Rates: rates, Seed: uint64(i + 1),
			Warmup: 0, Measure: slots, Drain: 0,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(slots)*float64(b.N)/b.Elapsed().Seconds(), "slots/s")
}

func BenchmarkEngine8x8LowLoad(b *testing.B)  { benchEngine(b, []int{8, 8}, 0.2) }
func BenchmarkEngine8x8HighLoad(b *testing.B) { benchEngine(b, []int{8, 8}, 0.9) }
func BenchmarkEngine16x16(b *testing.B)       { benchEngine(b, []int{16, 16}, 0.8) }
func BenchmarkEngine8x8x8(b *testing.B)       { benchEngine(b, []int{8, 8, 8}, 0.8) }
func BenchmarkEngineHypercube8(b *testing.B)  { benchEngine(b, []int{2, 2, 2, 2, 2, 2, 2, 2}, 0.8) }
