package sim

// Batched multi-replication execution: advance R same-shape, same-scheme
// replications through one pass, sharing every immutable input (topology,
// LinkTables, scheme tables, compiled fault schedule source) while keeping
// all mutable per-replication state private. The batch is sharded across
// workers in contiguous rep stripes — replications never communicate, so
// the sharding is barrier-free — and within a stripe the replications
// advance in lockstep slot-by-slot, their bulk state (busy tables, inflight
// slots, ready bitmaps) carved from one contiguous struct-of-arrays arena
// so the sweep streams through adjacent memory instead of re-faulting a
// cold heap per run.
//
// Determinism contract: every replication is bit-identical to a sequential
// Runner.Run with the same Config (Base with Seeds[i] substituted). This
// holds by construction — both paths execute the same engine.step — and is
// enforced by the differential tests in batch_test.go. The contract keeps
// golden tests, checkpoints, fault schedules, guards, and probes working
// unchanged on top of the batched path.

import (
	"fmt"
	"runtime"
	"sync"
)

// Batch describes R replications of one operating point: a shared Config
// template and one seed per replication.
type Batch struct {
	// Base is the configuration every replication runs; Base.Seed is
	// ignored (each replication substitutes its entry from Seeds).
	// Base.OnDeliver and Base.Probe, when set, are invoked concurrently
	// from every worker stripe and must be safe for concurrent use; batch
	// callers normally leave them nil.
	Base Config

	// Seeds holds one RNG seed per replication; len(Seeds) is R.
	Seeds []uint64

	// Workers bounds the rep-stripe parallelism: the batch is split into
	// that many contiguous stripes, each advanced by its own goroutine.
	// 0 means GOMAXPROCS; 1 runs the whole batch on the calling goroutine
	// (what sweep workers use, since the sweep pool already owns the
	// machine's parallelism).
	Workers int
}

// RepResult is the outcome of one replication in a batch: exactly one of
// Result and Err is set. A replication that panics reports the recovered
// panic as its Err without disturbing the other replications.
type RepResult struct {
	Result *Result
	Err    error
}

// batchArena hands out the bulk per-replication buffers from contiguous
// backing arrays, one arena per worker stripe, so the stripe's lockstep
// sweep over its replications walks adjacent memory. Exhausted (or nil)
// arenas fall back to plain make — the arena is a layout optimization,
// never a correctness requirement.
type batchArena struct {
	i64 []int64
	pkt []packet
	u64 []uint64
}

func (a *batchArena) int64s(n int) []int64 {
	if a != nil && n <= len(a.i64) {
		v := a.i64[:n:n]
		a.i64 = a.i64[n:]
		return v
	}
	return make([]int64, n)
}

func (a *batchArena) packets(n int) []packet {
	if a != nil && n <= len(a.pkt) {
		v := a.pkt[:n:n]
		a.pkt = a.pkt[n:]
		return v
	}
	return make([]packet, n)
}

func (a *batchArena) uint64s(n int) []uint64 {
	if a != nil && n <= len(a.u64) {
		v := a.u64[:n:n]
		a.u64 = a.u64[n:]
		return v
	}
	return make([]uint64, n)
}

// batchShard is one worker's persistent stripe state: its engines (whose
// buffers survive across batches, like a sequential Runner's) and the SoA
// arena their bulk buffers were carved from.
type batchShard struct {
	engines []*engine
	arena   batchArena
	// slots is the link-slot count the engines' buffers are sized for;
	// a batch with a different shape rebuilds the arena.
	slots int
	live  []int // scratch: indices of still-running reps
}

// prepare sizes the shard for reps engines of the given link-slot count.
// When the geometry changed (first batch, new shape, stripe grew) it
// allocates one contiguous block per buffer kind and points every engine's
// arena at it; engines then carve their stripe-adjacent views during reset.
func (s *batchShard) prepare(reps, slots int) {
	if s.slots == slots && len(s.engines) >= reps {
		return
	}
	for len(s.engines) < reps {
		s.engines = append(s.engines, &engine{})
	}
	n := len(s.engines)
	w0 := (slots + 63) / 64
	w1 := (w0 + 63) / 64
	s.arena = batchArena{
		i64: make([]int64, 2*n*slots),  // busyUntil + busySlots
		pkt: make([]packet, n*slots),   // inflight
		u64: make([]uint64, n*(w0+w1)), // ready bitmap levels
	}
	for _, e := range s.engines {
		// Dropping the old buffers forces reset to re-carve from the
		// fresh arena; queues and wheels keep their heap rings (they are
		// per-rep dynamic structures, not part of the SoA block).
		e.busyUntil, e.busySlots, e.inflight = nil, nil, nil
		e.ready = linkBitmap{}
		e.arena = &s.arena
	}
	s.slots = slots
}

// stepBlock is how many slots a replication advances per lockstep turn.
// Replications never interact, so the block size is purely a locality
// knob: one slot per turn would reload every live rep's working set
// (timing wheel, queue rings, busy tables) each simulated slot, while a
// block keeps one rep's state cache-hot for stepBlock slots before the
// stripe rotates to the next rep. Results are identical for any value —
// each rep still executes the exact sequential step sequence — and the
// skew between reps stays bounded by one block.
const stepBlock = 2048

// run advances the stripe's replications in lockstep blocks: stepBlock
// slots for rep 0, stepBlock for rep 1, ..., then back to rep 0, until
// every rep finished. Reps that end early (guards, truncation,
// cancellation, panics) drop out of the live set without holding up the
// others.
func (s *batchShard) run(base Config, seeds []uint64, out []RepResult) {
	s.prepare(len(seeds), base.Shape.LinkSlots())
	live := s.live[:0]
	for i, seed := range seeds {
		cfg := base
		cfg.Seed = seed
		e := s.engines[i]
		if err := e.reset(cfg); err != nil {
			out[i] = RepResult{Err: err}
			continue
		}
		live = append(live, i)
	}
	for len(live) > 0 {
		// Compact in place: writes trail reads, so the filtered append
		// never clobbers an unvisited entry.
		next := live[:0]
		for _, i := range live {
			e := s.engines[i]
			done, err := stepSafe(e, stepBlock)
			if err != nil {
				out[i] = RepResult{Err: err}
				e.release()
				continue
			}
			if done {
				e.finish()
				out[i] = RepResult{Result: e.res}
				e.release()
				continue
			}
			next = append(next, i)
		}
		live = next
	}
	s.live = live[:0]
}

// stepSafe advances one engine by up to budget slots, converting a panic
// into that replication's error. The engine's buffers are structurally
// intact after a panic (see Runner.Recover) but its run is unrecoverable,
// so the rep just ends; the engine resets cleanly for the next batch.
func stepSafe(e *engine, budget int) (done bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			done, err = true, fmt.Errorf("sim: replication panicked: %v", r)
		}
	}()
	for k := 0; k < budget; k++ {
		if done, err := e.step(); done || err != nil {
			return done, err
		}
	}
	return false, nil
}

// BatchRunner executes batches of replications while reusing every
// engine buffer and arena across calls, the batched analogue of Runner. A
// sweep worker that dispatches many same-shape cells should reuse one
// BatchRunner: after the first batch the hot path is allocation-free. The
// zero value is ready to use. A BatchRunner is not safe for concurrent use;
// it owns its internal worker pool.
type BatchRunner struct {
	shards []*batchShard
}

// Run executes len(batch.Seeds) replications of batch.Base and returns one
// RepResult per seed, in seed order. Replications are bit-identical to
// sequential Runner.Run calls with the same Config and seed. The error
// return covers only up-front validation; per-replication failures
// (panics, context cancellation mid-run) land in the matching RepResult.
func (b *BatchRunner) Run(batch Batch) ([]RepResult, error) {
	if len(batch.Seeds) == 0 {
		return nil, fmt.Errorf("sim: batch has no seeds")
	}
	if err := batch.Base.Validate(); err != nil {
		return nil, err
	}
	r := len(batch.Seeds)
	workers := batch.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > r {
		workers = r
	}
	for len(b.shards) < workers {
		b.shards = append(b.shards, &batchShard{})
	}
	out := make([]RepResult, r)
	if workers == 1 {
		b.shards[0].run(batch.Base, batch.Seeds, out)
		return out, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*r/workers, (w+1)*r/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(s *batchShard, lo, hi int) {
			defer wg.Done()
			s.run(batch.Base, batch.Seeds[lo:hi], out[lo:hi])
		}(b.shards[w], lo, hi)
	}
	wg.Wait()
	return out, nil
}

// RunBatch executes a batch with a throwaway BatchRunner — the package-level
// convenience mirroring Run. Callers issuing many batches should hold a
// BatchRunner instead.
func RunBatch(batch Batch) ([]RepResult, error) {
	var b BatchRunner
	return b.Run(batch)
}
