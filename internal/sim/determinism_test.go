package sim

import (
	"io"
	"reflect"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/obs"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// detCase builds a Config exercising one topology/load/discipline mix.
func detCase(t *testing.T, dims []int, rho, frac float64, disc core.Discipline, mean float64, seed uint64) Config {
	t.Helper()
	s := torus.MustNew(dims...)
	rates, err := traffic.RatesForRho(s, rho, frac, mean, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.NewScheme(s, disc, core.BalancedRotation, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	var length traffic.LengthDist
	if mean > 1 {
		length = traffic.GeometricLength(mean)
	}
	return Config{
		Shape: s, Scheme: sch, Rates: rates, Length: length, Seed: seed,
		Warmup: 150, Measure: 800, Drain: 400,
	}
}

// TestRunDeterministic asserts that two Run calls with an identical Config
// produce identical Result fields, for a spread of shapes, loads, and
// disciplines. This is the contract the event-driven engine must keep: a
// link wake-up schedule plus ascending-LinkID service must replay the exact
// same trajectory for a fixed seed.
func TestRunDeterministic(t *testing.T) {
	cases := []Config{
		detCase(t, []int{8, 8}, 0.2, 1, core.TwoLevel, 1, 7),
		detCase(t, []int{8, 8}, 0.9, 0.5, core.TwoLevel, 1, 8),
		detCase(t, []int{4, 5}, 0.5, 0.7, core.FCFS, 1, 9),
		detCase(t, []int{4, 4, 8}, 0.6, 0.5, core.ThreeLevel, 1, 10),
		detCase(t, []int{2, 2, 2, 2, 2}, 0.7, 1, core.TwoLevel, 4, 11),
	}
	for i, cfg := range cases {
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("case %d: identical configs produced different results:\n%+v\n%+v", i, a, b)
		}
	}
}

// TestRunnerReuseMatchesFreshRun asserts that a Runner reused across runs
// of different shapes and class counts produces results identical to fresh
// engines: buffer recycling must never leak state between runs.
func TestRunnerReuseMatchesFreshRun(t *testing.T) {
	cases := []Config{
		detCase(t, []int{8, 8}, 0.8, 1, core.TwoLevel, 1, 21),
		detCase(t, []int{4, 5}, 0.5, 0.7, core.FCFS, 1, 22),
		// Same shape twice in a row: exercises the buffer-reuse path.
		detCase(t, []int{4, 5}, 0.5, 0.7, core.FCFS, 1, 23),
		detCase(t, []int{4, 4, 8}, 0.6, 0.5, core.ThreeLevel, 4, 24),
		// Back to a smaller shape after a larger one.
		detCase(t, []int{2, 2, 2}, 0.4, 0.5, core.TwoLevel, 1, 25),
	}
	var runner Runner
	for i, cfg := range cases {
		var fresh Runner
		want, err := fresh.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := runner.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: reused runner diverged from fresh engine:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestTruncatedRunThenReuse checks that a run aborted by MaxBacklog leaves
// no residue in a reused Runner: pending wheel arrivals, ready marks, and
// task state from the truncated run must not affect the next run.
func TestTruncatedRunThenReuse(t *testing.T) {
	over := detCase(t, []int{4, 4}, 1.6, 1, core.FCFS, 1, 31) // far beyond saturation
	over.MaxBacklog = 200
	normal := detCase(t, []int{4, 4}, 0.5, 1, core.FCFS, 1, 32)

	var runner Runner
	tr, err := runner.Run(over)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Truncated {
		t.Fatal("overload run was not truncated; raise the load")
	}
	got, err := runner.Run(normal)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(normal)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("run after truncated run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestProbeAttachedBitIdentical asserts the zero-overhead contract from the
// observer's side: attaching probes (including a trace writer streaming
// every event) must not perturb the simulation. Results with Probe set must
// be bit-identical to results with Probe == nil.
func TestProbeAttachedBitIdentical(t *testing.T) {
	cases := []Config{
		detCase(t, []int{8, 8}, 0.8, 1, core.TwoLevel, 1, 41),
		detCase(t, []int{4, 5}, 0.5, 0.7, core.FCFS, 1, 42),
		detCase(t, []int{4, 4, 8}, 0.6, 0.5, core.ThreeLevel, 4, 43),
	}
	for i, cfg := range cases {
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		probed := cfg
		probed.Probe = obs.Multi{
			obs.NewStandard(cfg.Shape, cfg.Warmup, cfg.Measure),
			&obs.Counters{},
			mustTraceWriter(t, io.Discard),
		}
		got, err := Run(probed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: probes perturbed the run:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestRunnerReuseWithProbes asserts that buffer reuse and probes compose: a
// reused Runner with probes attached matches a fresh engine without them,
// and the probe from a previous run never leaks into the next (release
// clears the probe reference).
func TestRunnerReuseWithProbes(t *testing.T) {
	cases := []Config{
		detCase(t, []int{8, 8}, 0.8, 1, core.TwoLevel, 1, 51),
		detCase(t, []int{4, 5}, 0.5, 0.7, core.FCFS, 1, 52),
		detCase(t, []int{4, 5}, 0.5, 0.7, core.FCFS, 1, 53),
	}
	var runner Runner
	var prev *obs.Counters
	var prevSlots int64
	for i, cfg := range cases {
		want, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cnt := &obs.Counters{}
		probed := cfg
		probed.Probe = cnt
		got, err := runner.Run(probed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: probed reused runner diverged:\n got %+v\nwant %+v", i, got, want)
		}
		if cnt.Slots != cfg.Warmup+cfg.Measure+cfg.Drain {
			t.Errorf("case %d: probe saw %d slots", i, cnt.Slots)
		}
		if prev != nil && prev.Slots != prevSlots {
			t.Errorf("case %d: earlier run's probe mutated after its run ended", i)
		}
		prev, prevSlots = cnt, cnt.Slots
	}
	// A probe-free run on the same reused runner must also stay clean.
	plain := cases[0]
	got, err := runner.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("probe-free run after probed runs diverged:\n got %+v\nwant %+v", got, want)
	}
	if prev.Slots != prevSlots {
		t.Error("released probe received events from a later probe-free run")
	}
}

func mustTraceWriter(t *testing.T, w io.Writer) *obs.TraceWriter {
	t.Helper()
	tw, err := obs.NewTraceWriter(w, obs.Manifest{Schema: obs.ManifestSchema, Dims: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	return tw
}
