package sim

import (
	"context"
	"fmt"
	"testing"

	"prioritystar/internal/core"
	"prioritystar/internal/fault"
)

// goldenFingerprint condenses every float aggregate of a Result into one
// exact string (full float64 precision, no rounding), so two runs match iff
// they followed bit-identical trajectories.
func goldenFingerprint(r *Result) string {
	return fmt.Sprintf("rcp=%d/%v bc=%d/%v uni=%d/%v q0=%v q1=%v q2=%v gb=%d gu=%d ib=%d iu=%d be=%d mb=%d du=%v",
		r.Reception.Count(), r.Reception.Mean(),
		r.Broadcast.Count(), r.Broadcast.Mean(),
		r.Unicast.Count(), r.Unicast.Mean(),
		r.QueueWait[0].Mean(), r.QueueWait[1].Mean(), r.QueueWait[2].Mean(),
		r.GeneratedBroadcasts, r.GeneratedUnicasts,
		r.IncompleteBroadcasts, r.IncompleteUnicasts,
		r.BacklogEnd, r.MaxBacklog, r.DimUtilization)
}

// goldenCases are fingerprints captured from the engine BEFORE fault
// injection and runtime guards existed (commit 023e8d3). They pin the
// contract that a run with an empty fault schedule and zero-value guards is
// bit-identical to the historical engine.
func goldenCases(t *testing.T) []struct {
	cfg  Config
	want string
} {
	t.Helper()
	return []struct {
		cfg  Config
		want string
	}{
		{detCase(t, []int{8, 8}, 0.8, 1, core.TwoLevel, 1, 101),
			"rcp=162981/6.971505881053673 bc=2587/16.260146888287615 uni=0/0 q0=0.023590365430193442 q1=1.367210300429183 q2=0 gb=2587 gu=0 ib=0 iu=0 be=276 mb=567 du=[0.818203125 0.78109375]"},
		{detCase(t, []int{4, 5}, 0.5, 0.7, core.FCFS, 1, 102),
			"rcp=22667/3.3959500595579524 bc=1193/6.338642078792961 uni=4150/3.4672289156626563 q0=0.42793029805936383 q1=0 q2=0 gb=1193 gu=4150 ib=0 iu=0 be=10 mb=60 du=[0.506125 0.50353125]"},
		{detCase(t, []int{4, 4, 8}, 0.6, 0.5, core.ThreeLevel, 4, 103),
			"rcp=43561/28.685062326393 bc=343/94.69387755102045 uni=11395/32.677226853883376 q0=2.243608297153889 q1=4.015062058265807 q2=6.814846546923211 gb=343 gu=11395 ib=0 iu=0 be=563 mb=985 du=[0.5650048828125 0.5576416015625 0.5786962890625]"},
		{detCase(t, []int{2, 2, 2, 2}, 0.7, 1, core.TwoLevel, 2, 104),
			"rcp=17895/9.57004749930152 bc=1193/22.90360435875943 uni=0/0 q0=1.366875300914781 q1=5.451428571428566 q2=0 gb=1193 gu=0 ib=0 iu=0 be=104 mb=211 du=[0.73046875 0.718125 0.703125 0.686640625]"},
	}
}

// TestGoldenPrePREngine proves the fault-free, guard-free engine reproduces
// the pre-PR engine exactly.
func TestGoldenPrePREngine(t *testing.T) {
	for i, c := range goldenCases(t) {
		res, err := Run(c.cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := goldenFingerprint(res); got != c.want {
			t.Errorf("case %d: engine diverged from pre-PR golden run\n got %s\nwant %s", i, got, c.want)
		}
		if res.Status != StatusOK {
			t.Errorf("case %d: status %v, want ok", i, res.Status)
		}
	}
}

// TestGoldenWithInertRobustness proves that attaching the whole robustness
// apparatus in inert form — an empty (but non-nil) fault schedule, an armed
// divergence watchdog that does not fire, and a live context — still yields
// the pre-PR trajectory bit for bit.
func TestGoldenWithInertRobustness(t *testing.T) {
	for i, c := range goldenCases(t) {
		cfg := c.cfg
		cfg.Faults = &fault.Schedule{Seed: 99} // empty: injects nothing
		cfg.Guard = DefaultGuard(cfg.Shape)
		cfg.Context = context.Background()
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := goldenFingerprint(res); got != c.want {
			t.Errorf("case %d: inert robustness features perturbed the run\n got %s\nwant %s", i, got, c.want)
		}
		if res.Status != StatusOK {
			t.Errorf("case %d: status %v, want ok", i, res.Status)
		}
	}
}
