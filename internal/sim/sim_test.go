package sim

import (
	"math"
	"testing"

	"prioritystar/internal/balance"
	"prioritystar/internal/core"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// run builds a scheme and runs one simulation, failing the test on error.
func run(t *testing.T, dims []int, disc core.Discipline, rot core.Rotation,
	rho, broadcastFrac float64, seed uint64) *Result {
	t.Helper()
	s := torus.MustNew(dims...)
	rates, err := traffic.RatesForRho(s, rho, broadcastFrac, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.NewScheme(s, disc, rot, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Shape:   s,
		Scheme:  sch,
		Rates:   rates,
		Seed:    seed,
		Warmup:  2000,
		Measure: 6000,
		Drain:   2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	s := torus.MustNew(4, 4)
	sch, err := core.STARFCFS(s, traffic.Rates{LambdaB: 0.01}, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	good := Config{Shape: s, Scheme: sch, Measure: 10}

	bad := good
	bad.Shape = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil shape should fail")
	}
	bad = good
	bad.Measure = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero Measure should fail")
	}
	bad = good
	bad.Warmup = -1
	if _, err := Run(bad); err == nil {
		t.Error("negative warmup should fail")
	}
	bad = good
	bad.Rates = traffic.Rates{LambdaB: -1}
	if _, err := Run(bad); err == nil {
		t.Error("negative rates should fail")
	}
	other := torus.MustNew(8, 8)
	bad = good
	bad.Shape = other
	if _, err := Run(bad); err == nil {
		t.Error("scheme/shape mismatch should fail")
	}
}

func TestZeroTraffic(t *testing.T) {
	s := torus.MustNew(4, 4)
	sch, err := core.STARFCFS(s, traffic.Rates{}, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shape: s, Scheme: sch, Measure: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reception.Count() != 0 || res.Unicast.Count() != 0 {
		t.Error("zero traffic should produce no deliveries")
	}
	if res.AvgUtilization != 0 {
		t.Error("zero traffic should leave links idle")
	}
	if !res.Stable(s) {
		t.Error("empty network is stable")
	}
}

// TestLowLoadReceptionDelayIsDistance: with rho -> 0 every copy travels
// uncontended, so the average reception delay must approach the average
// Lee distance and the broadcast delay the source eccentricity.
func TestLowLoadReceptionDelayIsDistance(t *testing.T) {
	res := run(t, []int{8, 8}, core.TwoLevel, core.BalancedRotation, 0.02, 1, 1)
	s := torus.MustNew(8, 8)
	wantRec := s.AvgDistance()
	if math.Abs(res.Reception.Mean()-wantRec) > 0.15 {
		t.Errorf("low-load reception delay = %g, want ~%g", res.Reception.Mean(), wantRec)
	}
	// Broadcast delay at rho->0 is the tree height: the diameter (8), give
	// or take rare queueing.
	if res.Broadcast.Mean() < 7.5 || res.Broadcast.Mean() > 9.5 {
		t.Errorf("low-load broadcast delay = %g, want ~8", res.Broadcast.Mean())
	}
	if res.IncompleteBroadcasts > res.GeneratedBroadcasts/100 {
		t.Errorf("%d of %d broadcasts incomplete at low load",
			res.IncompleteBroadcasts, res.GeneratedBroadcasts)
	}
}

// TestLowLoadUnicastDelayIsDistance: same for unicast traffic.
func TestLowLoadUnicastDelayIsDistance(t *testing.T) {
	res := run(t, []int{8, 8}, core.TwoLevel, core.BalancedRotation, 0.02, 0, 2)
	s := torus.MustNew(8, 8)
	want := s.AvgDistance()
	if math.Abs(res.Unicast.Mean()-want) > 0.15 {
		t.Errorf("low-load unicast delay = %g, want ~%g", res.Unicast.Mean(), want)
	}
}

// TestUtilizationMatchesRho: the measured average link utilization equals
// the offered throughput factor, and a balanced scheme equalizes the
// per-dimension utilizations (the defining property of STAR).
func TestUtilizationMatchesRho(t *testing.T) {
	for _, tc := range []struct {
		dims []int
		frac float64
	}{
		{[]int{8, 8}, 1},
		{[]int{4, 8}, 1},
		{[]int{4, 4, 8}, 0.5},
	} {
		res := run(t, tc.dims, core.TwoLevel, core.BalancedRotation, 0.6, tc.frac, 3)
		if math.Abs(res.AvgUtilization-0.6) > 0.03 {
			t.Errorf("%v: AvgUtilization = %g, want ~0.6", tc.dims, res.AvgUtilization)
		}
		for i, u := range res.DimUtilization {
			if math.Abs(u-0.6) > 0.05 {
				t.Errorf("%v: dim %d utilization = %g, want ~0.6 (balanced)", tc.dims, i, u)
			}
		}
	}
}

// TestUnbalancedRotationSkewsUtilization: uniform rotation on an asymmetric
// torus must load some dimension above rho — the imbalance STAR corrects.
func TestUnbalancedRotationSkewsUtilization(t *testing.T) {
	res := run(t, []int{4, 8}, core.FCFS, core.UniformRotation, 0.5, 1, 4)
	// Predicted: dim loads proportional to row means of Eq. (1): 13.5 vs
	// 17.5 transmissions per task (dims 0, 1).
	if res.DimUtilization[1] < res.DimUtilization[0]*1.15 {
		t.Errorf("uniform rotation should overload the long dimension: %v", res.DimUtilization)
	}
}

// TestPrioritySTARBeatsFCFSAtHighLoad is the paper's Figs. 2 and 5 claim in
// miniature: at high throughput factor, priority STAR achieves markedly
// smaller reception and broadcast delay than the FCFS baseline.
func TestPrioritySTARBeatsFCFSAtHighLoad(t *testing.T) {
	prio := run(t, []int{8, 8}, core.TwoLevel, core.BalancedRotation, 0.85, 1, 5)
	fcfs := run(t, []int{8, 8}, core.FCFS, core.BalancedRotation, 0.85, 1, 5)
	if prio.Truncated || fcfs.Truncated {
		t.Fatal("rho=0.85 should be stable for both schemes")
	}
	if prio.Reception.Mean() >= fcfs.Reception.Mean() {
		t.Errorf("priority reception delay %g should beat FCFS %g",
			prio.Reception.Mean(), fcfs.Reception.Mean())
	}
	if prio.Broadcast.Mean() >= fcfs.Broadcast.Mean() {
		t.Errorf("priority broadcast delay %g should beat FCFS %g",
			prio.Broadcast.Mean(), fcfs.Broadcast.Mean())
	}
}

// TestHighPriorityWaitSmall checks the Section 3.2 analysis: high-priority
// packets see O(1/n) queueing, far below the low-priority class.
func TestHighPriorityWaitSmall(t *testing.T) {
	res := run(t, []int{8, 8}, core.TwoLevel, core.BalancedRotation, 0.8, 1, 6)
	high := res.QueueWait[0].Mean()
	low := res.QueueWait[1].Mean()
	if high > 0.5 {
		t.Errorf("high-priority wait = %g, want < 0.5 slots", high)
	}
	if low < 4*high {
		t.Errorf("low-priority wait %g should dwarf high-priority wait %g", low, high)
	}
}

// TestConservationLaw: with identical arrivals, the overall average queue
// wait is (approximately) invariant to the priority discipline — priorities
// redistribute waiting, they do not remove it (Section 3.2's conservation
// argument). Different schemes see different sample paths, so the tolerance
// is loose.
func TestConservationLaw(t *testing.T) {
	prio := run(t, []int{8, 8}, core.TwoLevel, core.BalancedRotation, 0.7, 1, 7)
	fcfs := run(t, []int{8, 8}, core.FCFS, core.BalancedRotation, 0.7, 1, 7)
	wPrio := (prio.QueueWait[0].Sum() + prio.QueueWait[1].Sum()) /
		float64(prio.QueueWait[0].Count()+prio.QueueWait[1].Count())
	wFCFS := fcfs.QueueWait[0].Mean()
	if math.Abs(wPrio-wFCFS) > 0.25*wFCFS {
		t.Errorf("mean wait with priority %g vs FCFS %g: conservation law violated", wPrio, wFCFS)
	}
}

// TestUnicastPriorityKeepsDelayFlat reproduces the Section 4 claim: with
// mixed traffic, giving unicast packets priority keeps their delay near the
// uncontended distance even at high load.
func TestUnicastPriorityKeepsDelayFlat(t *testing.T) {
	s := torus.MustNew(8, 8)
	prio := run(t, []int{8, 8}, core.TwoLevel, core.BalancedRotation, 0.85, 0.5, 8)
	fcfs := run(t, []int{8, 8}, core.FCFS, core.BalancedRotation, 0.85, 0.5, 8)
	dave := s.AvgDistance()
	if prio.Unicast.Mean() > dave+1.5 {
		t.Errorf("prioritized unicast delay = %g, want near %g", prio.Unicast.Mean(), dave)
	}
	if fcfs.Unicast.Mean() < prio.Unicast.Mean()+1 {
		t.Errorf("FCFS unicast delay %g should clearly exceed prioritized %g",
			fcfs.Unicast.Mean(), prio.Unicast.Mean())
	}
}

// TestThreeLevelOrdersWaits: high < medium < low queue waits under the
// three-level heterogeneous discipline.
func TestThreeLevelOrdersWaits(t *testing.T) {
	res := run(t, []int{8, 8}, core.ThreeLevel, core.BalancedRotation, 0.85, 0.5, 9)
	h, m, l := res.QueueWait[0].Mean(), res.QueueWait[1].Mean(), res.QueueWait[2].Mean()
	if !(h <= m && m <= l) {
		t.Errorf("waits not ordered: high %g, medium %g, low %g", h, m, l)
	}
	if res.QueueWait[1].Count() == 0 || res.QueueWait[2].Count() == 0 {
		t.Error("all three classes should see traffic")
	}
}

// TestDeterminism: identical seeds produce identical results.
func TestDeterminism(t *testing.T) {
	a := run(t, []int{4, 8}, core.TwoLevel, core.BalancedRotation, 0.5, 0.7, 42)
	b := run(t, []int{4, 8}, core.TwoLevel, core.BalancedRotation, 0.5, 0.7, 42)
	if a.Reception.Mean() != b.Reception.Mean() ||
		a.Broadcast.Count() != b.Broadcast.Count() ||
		a.Unicast.Mean() != b.Unicast.Mean() ||
		a.AvgUtilization != b.AvgUtilization {
		t.Error("same seed must reproduce identical results")
	}
	c := run(t, []int{4, 8}, core.TwoLevel, core.BalancedRotation, 0.5, 0.7, 43)
	if a.Reception.Mean() == c.Reception.Mean() && a.Unicast.Mean() == c.Unicast.Mean() {
		t.Error("different seeds should differ")
	}
}

// TestOverloadTruncates: rho > 1 is unstable; the backlog guard must fire
// and flag the run.
func TestOverloadTruncates(t *testing.T) {
	s := torus.MustNew(8, 8)
	rates, err := traffic.RatesForRho(s, 1.4, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.STARFCFS(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Shape: s, Scheme: sch, Rates: rates, Seed: 1,
		Warmup: 0, Measure: 50000, Drain: 0,
		MaxBacklog: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("overloaded run should truncate")
	}
	if res.Stable(s) {
		t.Error("truncated run must report unstable")
	}
}

// TestOverloadBacklogGrows: just above saturation the backlog slope is
// clearly positive even without truncation.
func TestOverloadBacklogGrows(t *testing.T) {
	s := torus.MustNew(4, 4)
	rates, err := traffic.RatesForRho(s, 1.15, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.STARFCFS(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Seed: 2, Warmup: 500, Measure: 8000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		return // also acceptable: the guard fired
	}
	if res.BacklogSlope <= 0 {
		t.Errorf("backlog slope = %g, want positive above saturation", res.BacklogSlope)
	}
	if res.Stable(s) {
		t.Error("overloaded run should be unstable")
	}
}

// TestVariableLengthStable: geometric packet lengths at moderate rho stay
// stable and deliver everything — the paper's variable-length claim.
func TestVariableLengthStable(t *testing.T) {
	s := torus.MustNew(8, 8)
	length := traffic.GeometricLength(4)
	rates, err := traffic.RatesForRho(s, 0.7, 1, length.Mean(), balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Shape: s, Scheme: sch, Rates: rates, Length: length, Seed: 3,
		Warmup: 3000, Measure: 8000, Drain: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable(s) {
		t.Fatal("geometric lengths at rho=0.7 should be stable")
	}
	if math.Abs(res.AvgUtilization-0.7) > 0.05 {
		t.Errorf("utilization = %g, want ~0.7", res.AvgUtilization)
	}
	// Minimum reception delay now scales with packet length (~4 slots per
	// hop), so the mean must exceed the unit-length distance bound.
	if res.Reception.Mean() < s.AvgDistance()*2 {
		t.Errorf("variable-length reception delay = %g suspiciously small", res.Reception.Mean())
	}
}

// TestHypercubeBroadcast: the 2-ary d-cube path — every dimension is a
// 2-ring with a single link — must deliver all copies.
func TestHypercubeBroadcast(t *testing.T) {
	s, err := torus.Hypercube(6)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := traffic.RatesForRho(s, 0.5, 1, 1, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := core.PrioritySTAR(s, rates, balance.ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Shape: s, Scheme: sch, Rates: rates, Seed: 4, Warmup: 1000, Measure: 4000, Drain: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reception.Count() == 0 {
		t.Fatal("no receptions on the hypercube")
	}
	// Low-load-ish check: reception delay close to the average distance
	// d/2 * N/(N-1).
	want := s.AvgDistance()
	if math.Abs(res.Reception.Mean()-want) > 1.5 {
		t.Errorf("hypercube reception delay = %g, want ~%g", res.Reception.Mean(), want)
	}
	if math.Abs(res.AvgUtilization-0.5) > 0.05 {
		t.Errorf("hypercube utilization = %g, want ~0.5", res.AvgUtilization)
	}
}

// TestSingleRing: a 1-dimensional torus is the smallest valid substrate.
func TestSingleRing(t *testing.T) {
	res := run(t, []int{8}, core.TwoLevel, core.BalancedRotation, 0.5, 0.5, 10)
	if res.Reception.Count() == 0 || res.Unicast.Count() == 0 {
		t.Fatal("single ring should carry traffic")
	}
	if !res.Stable(torus.MustNew(8)) {
		t.Error("single ring at rho=0.5 should be stable")
	}
}

// TestBroadcastDeliveryCountExact: every measured broadcast task that
// completes delivers to exactly N-1 nodes — reception count bookkeeping.
func TestBroadcastDeliveryCountExact(t *testing.T) {
	res := run(t, []int{4, 4}, core.TwoLevel, core.BalancedRotation, 0.3, 1, 11)
	completed := res.Broadcast.Count()
	incomplete := res.IncompleteBroadcasts
	if completed+incomplete != res.GeneratedBroadcasts {
		t.Errorf("completed %d + incomplete %d != generated %d",
			completed, incomplete, res.GeneratedBroadcasts)
	}
	// Receptions: each completed task contributes exactly N-1; incomplete
	// tasks contribute fewer.
	n := int64(15)
	minRec := completed * n
	maxRec := completed*n + incomplete*n
	if res.Reception.Count() < minRec || res.Reception.Count() > maxRec {
		t.Errorf("reception count %d outside [%d, %d]", res.Reception.Count(), minRec, maxRec)
	}
}

// TestMeasurementWindowExcludesWarmup: nothing measured is born before
// warmup, so delays cannot reference pre-window births.
func TestMeasurementWindowExcludesWarmup(t *testing.T) {
	res := run(t, []int{4, 4}, core.TwoLevel, core.BalancedRotation, 0.3, 0.5, 12)
	if res.Reception.Min() < 1 {
		t.Errorf("minimum reception delay %g < 1 slot", res.Reception.Min())
	}
	if res.Unicast.Min() < 1 {
		t.Errorf("minimum unicast delay %g < 1 slot", res.Unicast.Min())
	}
}

func TestOverlapHelper(t *testing.T) {
	cases := []struct{ a, b, lo, hi, want int64 }{
		{0, 10, 2, 5, 3},
		{0, 10, 0, 10, 10},
		{5, 6, 0, 10, 1},
		{0, 2, 5, 10, 0},
		{8, 12, 0, 10, 2},
		{12, 15, 0, 10, 0},
	}
	for _, c := range cases {
		if got := overlap(c.a, c.b, c.lo, c.hi); got != c.want {
			t.Errorf("overlap(%d,%d,%d,%d) = %d, want %d", c.a, c.b, c.lo, c.hi, got, c.want)
		}
	}
}
