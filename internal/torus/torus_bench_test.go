package torus

import "testing"

func BenchmarkNeighbor(b *testing.B) {
	s := MustNew(8, 8, 8)
	b.ReportAllocs()
	var acc Node
	for i := 0; i < b.N; i++ {
		acc = s.Neighbor(Node(i%s.Size()), i%3, Plus)
	}
	_ = acc
}

func BenchmarkCoords(b *testing.B) {
	s := MustNew(8, 8, 8)
	buf := make([]int, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = s.Coords(Node(i%s.Size()), buf)
	}
}

func BenchmarkDistance(b *testing.B) {
	s := MustNew(16, 16)
	b.ReportAllocs()
	var acc int
	for i := 0; i < b.N; i++ {
		acc += s.Distance(Node(i%s.Size()), Node((i*7)%s.Size()))
	}
	_ = acc
}

func BenchmarkLinkDecode(b *testing.B) {
	s := MustNew(8, 8, 8)
	b.ReportAllocs()
	var acc Node
	for i := 0; i < b.N; i++ {
		acc = s.LinkDst(LinkID(i % s.LinkSlots()))
	}
	_ = acc
}
