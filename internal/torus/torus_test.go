package torus

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no dimensions should fail")
	}
	if _, err := New(5, 1, 5); err == nil {
		t.Error("New with a 1-length dimension should fail")
	}
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(-3); err == nil {
		t.Error("New(-3) should fail")
	}
	if _, err := New(1<<16, 1<<16); err == nil {
		t.Error("oversized shape should fail")
	}
	if _, err := New(4, 4, 8); err != nil {
		t.Errorf("New(4,4,8) failed: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(1) should panic")
		}
	}()
	MustNew(1)
}

func TestBasicProperties(t *testing.T) {
	cases := []struct {
		dims      []int
		size      int
		degree    int
		diameter  int
		symmetric bool
	}{
		{[]int{8, 8}, 64, 4, 8, true},
		{[]int{16, 16}, 256, 4, 16, true},
		{[]int{8, 8, 8}, 512, 6, 12, true},
		{[]int{4, 4, 8}, 128, 6, 8, false},
		{[]int{5, 5}, 25, 4, 4, true},
		{[]int{2, 2, 2}, 8, 3, 3, true}, // 3-cube: hypercube degree d
		{[]int{2, 8}, 16, 3, 5, false},  // mixed 2-ring
		{[]int{3}, 3, 2, 1, true},       // single ring
		{[]int{2, 3, 4, 5}, 120, 7, 6, false},
	}
	for _, c := range cases {
		s := MustNew(c.dims...)
		if s.Size() != c.size {
			t.Errorf("%v: Size = %d, want %d", c.dims, s.Size(), c.size)
		}
		if s.Degree() != c.degree {
			t.Errorf("%v: Degree = %d, want %d", c.dims, s.Degree(), c.degree)
		}
		if s.Links() != c.size*c.degree {
			t.Errorf("%v: Links = %d, want %d", c.dims, s.Links(), c.size*c.degree)
		}
		if s.Diameter() != c.diameter {
			t.Errorf("%v: Diameter = %d, want %d", c.dims, s.Diameter(), c.diameter)
		}
		if s.Symmetric() != c.symmetric {
			t.Errorf("%v: Symmetric = %v, want %v", c.dims, s.Symmetric(), c.symmetric)
		}
		if s.Dims() != len(c.dims) {
			t.Errorf("%v: Dims = %d, want %d", c.dims, s.Dims(), len(c.dims))
		}
		for i, n := range c.dims {
			if s.Dim(i) != n {
				t.Errorf("%v: Dim(%d) = %d, want %d", c.dims, i, s.Dim(i), n)
			}
		}
	}
}

func TestHypercubeMatchesBinaryCube(t *testing.T) {
	for d := 1; d <= 10; d++ {
		h, err := Hypercube(d)
		if err != nil {
			t.Fatalf("Hypercube(%d): %v", d, err)
		}
		if h.Size() != 1<<d {
			t.Errorf("Hypercube(%d): size %d, want %d", d, h.Size(), 1<<d)
		}
		if h.Degree() != d {
			t.Errorf("Hypercube(%d): degree %d, want %d", d, h.Degree(), d)
		}
		if h.Diameter() != d {
			t.Errorf("Hypercube(%d): diameter %d, want %d", d, h.Diameter(), d)
		}
		// Neighbor along dimension i must be node XOR (1<<i).
		for u := Node(0); int(u) < h.Size(); u++ {
			for i := 0; i < d; i++ {
				want := Node(int(u) ^ (1 << i))
				if got := h.Neighbor(u, i, Plus); got != want {
					t.Fatalf("Hypercube(%d): Neighbor(%d, dim %d) = %d, want %d", d, u, i, got, want)
				}
			}
		}
	}
}

func TestNAryDCube(t *testing.T) {
	s, err := NAryDCube(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 125 || !s.Symmetric() || s.Dims() != 3 {
		t.Errorf("NAryDCube(5,3) = %v", s)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	s := MustNew(3, 4, 5, 2)
	buf := make([]int, 4)
	for u := Node(0); int(u) < s.Size(); u++ {
		c := s.Coords(u, buf)
		if got := s.Node(c); got != u {
			t.Fatalf("round trip failed: %d -> %v -> %d", u, c, got)
		}
		for i := range c {
			if s.Coord(u, i) != c[i] {
				t.Fatalf("Coord(%d, %d) = %d, want %d", u, i, s.Coord(u, i), c[i])
			}
		}
	}
}

func TestCoordsAllocatesWhenNeeded(t *testing.T) {
	s := MustNew(4, 4)
	c := s.Coords(7, nil)
	if len(c) != 2 || c[0] != 3 || c[1] != 1 {
		t.Errorf("Coords(7) = %v, want [3 1]", c)
	}
}

func TestNeighborInverse(t *testing.T) {
	s := MustNew(5, 4, 3)
	for u := Node(0); int(u) < s.Size(); u++ {
		for i := 0; i < s.Dims(); i++ {
			p := s.Neighbor(u, i, Plus)
			if got := s.Neighbor(p, i, Minus); got != u {
				t.Fatalf("Minus(Plus(%d)) dim %d = %d", u, i, got)
			}
			if s.RingOffset(u, p, i) != 1 {
				t.Fatalf("offset to Plus neighbor should be 1")
			}
			// Neighbor differs in exactly one coordinate.
			diff := 0
			for j := 0; j < s.Dims(); j++ {
				if s.Coord(u, j) != s.Coord(p, j) {
					diff++
				}
			}
			if diff != 1 {
				t.Fatalf("neighbor of %d differs in %d coords", u, diff)
			}
		}
	}
}

func TestNeighborWraparound(t *testing.T) {
	s := MustNew(5, 3)
	// Node at coord (4, 2): Plus wraps to 0 in both dims.
	u := s.Node([]int{4, 2})
	if got := s.Neighbor(u, 0, Plus); s.Coord(got, 0) != 0 {
		t.Errorf("wraparound + in dim 0 failed: coord %d", s.Coord(got, 0))
	}
	if got := s.Neighbor(u, 1, Plus); s.Coord(got, 1) != 0 {
		t.Errorf("wraparound + in dim 1 failed")
	}
	v := s.Node([]int{0, 0})
	if got := s.Neighbor(v, 0, Minus); s.Coord(got, 0) != 4 {
		t.Errorf("wraparound - in dim 0 failed")
	}
}

func TestRingDist(t *testing.T) {
	cases := []struct{ delta, n, want int }{
		{0, 8, 0}, {1, 8, 1}, {4, 8, 4}, {5, 8, 3}, {7, 8, 1},
		{2, 5, 2}, {3, 5, 2}, {1, 2, 1},
	}
	for _, c := range cases {
		if got := RingDist(c.delta, c.n); got != c.want {
			t.Errorf("RingDist(%d, %d) = %d, want %d", c.delta, c.n, got, c.want)
		}
	}
}

func TestDistanceSymmetricAndTriangle(t *testing.T) {
	s := MustNew(4, 5)
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 500; trial++ {
		a := Node(rng.IntN(s.Size()))
		b := Node(rng.IntN(s.Size()))
		c := Node(rng.IntN(s.Size()))
		if s.Distance(a, b) != s.Distance(b, a) {
			t.Fatalf("distance not symmetric for %d,%d", a, b)
		}
		if s.Distance(a, a) != 0 {
			t.Fatalf("self distance nonzero")
		}
		if s.Distance(a, c) > s.Distance(a, b)+s.Distance(b, c) {
			t.Fatalf("triangle inequality violated for %d,%d,%d", a, b, c)
		}
		if s.Distance(a, b) > s.Diameter() {
			t.Fatalf("distance exceeds diameter")
		}
	}
}

func TestDistanceMatchesBFS(t *testing.T) {
	// Exhaustive check against breadth-first search on a small asymmetric
	// torus, including a 2-ring dimension.
	s := MustNew(2, 5, 3)
	src := Node(7)
	dist := make([]int, s.Size())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []Node{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for i := 0; i < s.Dims(); i++ {
			for di := 0; di < s.DirsInDim(i); di++ {
				v := s.Neighbor(u, i, DirFromIndex(di))
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	for v := Node(0); int(v) < s.Size(); v++ {
		if dist[v] != s.Distance(src, v) {
			t.Errorf("node %d: BFS %d, Distance %d", v, dist[v], s.Distance(src, v))
		}
	}
}

func TestAvgDimDistanceExact(t *testing.T) {
	// Brute-force expected per-dimension distance over uniform non-source
	// destinations.
	shapes := [][]int{{8, 8}, {4, 4, 8}, {5, 3}, {2, 6}}
	for _, dims := range shapes {
		s := MustNew(dims...)
		src := Node(0)
		for i := 0; i < s.Dims(); i++ {
			sum := 0
			for v := Node(0); int(v) < s.Size(); v++ {
				if v == src {
					continue
				}
				sum += RingDist(s.RingOffset(src, v, i), s.Dim(i))
			}
			want := float64(sum) / float64(s.Size()-1)
			got := s.AvgDimDistance(i)
			if diff := got - want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%v dim %d: AvgDimDistance = %g, want %g", dims, i, got, want)
			}
		}
	}
}

func TestAvgDistance(t *testing.T) {
	s := MustNew(8, 8)
	src := Node(0)
	sum := 0
	for v := Node(1); int(v) < s.Size(); v++ {
		sum += s.Distance(src, v)
	}
	want := float64(sum) / float64(s.Size()-1)
	if got := s.AvgDistance(); got < want-1e-12 || got > want+1e-12 {
		t.Errorf("AvgDistance = %g, want %g", got, want)
	}
}

func TestPaperDimDistance(t *testing.T) {
	s := MustNew(8, 5, 4, 2)
	want := []int{2, 1, 1, 0}
	for i, w := range want {
		if got := s.PaperDimDistance(i); got != w {
			t.Errorf("PaperDimDistance(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestLinkIDRoundTrip(t *testing.T) {
	s := MustNew(2, 5, 3)
	seen := make(map[LinkID]bool)
	valid := 0
	for u := Node(0); int(u) < s.Size(); u++ {
		for i := 0; i < s.Dims(); i++ {
			for di := 0; di < s.DirsInDim(i); di++ {
				dir := DirFromIndex(di)
				l := s.Link(u, i, dir)
				if seen[l] {
					t.Fatalf("duplicate link ID %d", l)
				}
				seen[l] = true
				valid++
				if !s.ValidLink(l) {
					t.Fatalf("link %d should be valid", l)
				}
				if s.LinkSrc(l) != u || s.LinkDim(l) != i || s.LinkDir(l) != dir {
					t.Fatalf("link %d decodes to (%d,%d,%d), want (%d,%d,%d)",
						l, s.LinkSrc(l), s.LinkDim(l), s.LinkDir(l), u, i, dir)
				}
				if s.LinkDst(l) != s.Neighbor(u, i, dir) {
					t.Fatalf("LinkDst mismatch for %d", l)
				}
			}
		}
	}
	if valid != s.Links() {
		t.Errorf("enumerated %d valid links, want %d", valid, s.Links())
	}
	// Invalid slots: Minus direction in the 2-ring dimension 0.
	l := s.Link(0, 0, Minus)
	if s.ValidLink(l) {
		t.Errorf("Minus link of a 2-ring should be invalid")
	}
	if s.ValidLink(-1) || s.ValidLink(LinkID(s.LinkSlots())) {
		t.Errorf("out-of-range link IDs should be invalid")
	}
}

func TestLinkSlotsCoversAllLinks(t *testing.T) {
	s := MustNew(4, 4, 8)
	if s.LinkSlots() != s.Size()*s.Dims()*2 {
		t.Errorf("LinkSlots = %d", s.LinkSlots())
	}
	count := 0
	for l := LinkID(0); int(l) < s.LinkSlots(); l++ {
		if s.ValidLink(l) {
			count++
		}
	}
	if count != s.Links() {
		t.Errorf("valid slots %d != Links %d", count, s.Links())
	}
}

func TestString(t *testing.T) {
	if got := MustNew(4, 4, 8).String(); got != "4x4x8 torus" {
		t.Errorf("String = %q", got)
	}
}

func TestDirHelpers(t *testing.T) {
	if DirIndex(Plus) != 0 || DirIndex(Minus) != 1 {
		t.Error("DirIndex wrong")
	}
	if DirFromIndex(0) != Plus || DirFromIndex(1) != Minus {
		t.Error("DirFromIndex wrong")
	}
}

// quickShape generates a random small shape from fuzz input.
func quickShape(rng *rand.Rand) *Shape {
	d := 1 + rng.IntN(4)
	dims := make([]int, d)
	for i := range dims {
		dims[i] = 2 + rng.IntN(6)
	}
	return MustNew(dims...)
}

func TestQuickCodecAndNeighbors(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xda7a))
		s := quickShape(rng)
		u := Node(rng.IntN(s.Size()))
		c := s.Coords(u, nil)
		if s.Node(c) != u {
			return false
		}
		for i := 0; i < s.Dims(); i++ {
			// Walking n_i steps in one direction returns to start.
			v := u
			for k := 0; k < s.Dim(i); k++ {
				v = s.Neighbor(v, i, Plus)
			}
			if v != u {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceConsistency(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xd157))
		s := quickShape(rng)
		a := Node(rng.IntN(s.Size()))
		b := Node(rng.IntN(s.Size()))
		// Distance equals the sum of per-dimension ring distances and is
		// reachable by that many neighbor steps.
		want := 0
		v := a
		for i := 0; i < s.Dims(); i++ {
			off := s.RingOffset(a, b, i)
			rd := RingDist(off, s.Dim(i))
			want += rd
			dir := Plus
			if off > s.Dim(i)-off {
				dir = Minus
			}
			for k := 0; k < rd; k++ {
				v = s.Neighbor(v, i, dir)
			}
		}
		return s.Distance(a, b) == want && v == b
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDimLengthsCopies(t *testing.T) {
	s := MustNew(4, 8)
	d := s.DimLengths()
	if len(d) != 2 || d[0] != 4 || d[1] != 8 {
		t.Fatalf("DimLengths = %v", d)
	}
	d[0] = 99 // must not alias internal state
	if s.Dim(0) != 4 {
		t.Error("DimLengths leaked internal slice")
	}
}

func TestValid(t *testing.T) {
	s := MustNew(3, 3)
	if !s.Valid(0) || !s.Valid(8) {
		t.Error("in-range nodes should be valid")
	}
	if s.Valid(-1) || s.Valid(9) {
		t.Error("out-of-range nodes should be invalid")
	}
}

func TestLinkTablesMatchAccessors(t *testing.T) {
	for _, s := range []*Shape{MustNew(4, 5), MustNew(2, 3, 4), MustNew(2, 2, 2)} {
		dst, dim := s.LinkTables()
		if len(dst) != s.LinkSlots() || len(dim) != s.LinkSlots() {
			t.Fatalf("%v: table sizes %d/%d, want %d", s, len(dst), len(dim), s.LinkSlots())
		}
		for l := 0; l < s.LinkSlots(); l++ {
			id := LinkID(l)
			if int(dim[l]) != s.LinkDim(id) {
				t.Fatalf("%v link %d: dim table %d, accessor %d", s, l, dim[l], s.LinkDim(id))
			}
			if s.ValidLink(id) && dst[l] != s.LinkDst(id) {
				t.Fatalf("%v link %d: dst table %d, accessor %d", s, l, dst[l], s.LinkDst(id))
			}
		}
		// The tables are built once and shared.
		dst2, dim2 := s.LinkTables()
		if &dst2[0] != &dst[0] || &dim2[0] != &dim[0] {
			t.Fatalf("%v: LinkTables rebuilt instead of cached", s)
		}
	}
}

func TestLinkTablesConcurrent(t *testing.T) {
	s := MustNew(6, 6)
	var wg sync.WaitGroup
	tables := make([][]Node, 8)
	for i := range tables {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tables[i], _ = s.LinkTables()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(tables); i++ {
		if &tables[i][0] != &tables[0][0] {
			t.Fatal("concurrent LinkTables calls produced different tables")
		}
	}
}
