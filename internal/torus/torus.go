// Package torus models the interconnection topologies the paper evaluates:
// general n1 x n2 x ... x nd tori (meshes with wraparound), n-ary d-cubes
// (all dimensions equal), and binary hypercubes (the 2-ary d-cube special
// case).
//
// Nodes are identified by dense integer IDs in [0, N) using a mixed-radix
// encoding of their coordinates: dimension 0 is the fastest-varying digit.
// Every node has one bidirectional ring per dimension. A ring of length
// n >= 3 contributes two outgoing directed links per node (directions + and
// -); a ring of length 2 contributes a single outgoing directed link,
// because both directions reach the same neighbor and a 2-ary d-cube must
// coincide with the d-dimensional hypercube (d links per node, not 2d).
package torus

import (
	"fmt"
	"strings"
	"sync"
)

// Node identifies a torus node by its dense mixed-radix index.
type Node int32

// Dir is a ring direction: +1 (increasing coordinate) or -1 (decreasing).
type Dir int8

// Ring directions. Dimensions of length 2 only use Plus.
const (
	Plus  Dir = +1
	Minus Dir = -1
)

// DirIndex converts a direction into a dense index (Plus=0, Minus=1) for
// addressing per-direction arrays.
func DirIndex(d Dir) int {
	if d == Plus {
		return 0
	}
	return 1
}

// DirFromIndex is the inverse of DirIndex.
func DirFromIndex(i int) Dir {
	if i == 0 {
		return Plus
	}
	return Minus
}

// Shape describes an n1 x n2 x ... x nd torus. It is immutable after
// construction and safe for concurrent use.
type Shape struct {
	dims    []int // nodes along each dimension, each >= 2
	strides []int // strides[i] = n_0 * n_1 * ... * n_{i-1}
	size    int   // total number of nodes N
	degree  int   // outgoing directed links per node
	links   int   // total directed links in the network (L)

	// Lazily built per-LinkID lookup tables (see LinkTables). Built at
	// most once per shape; sync.Once keeps the shape safe for concurrent
	// use. Analysis-only code that never touches links pays nothing.
	linkOnce   sync.Once
	linkDstTab []Node
	linkDimTab []int32
}

// New constructs a torus shape from the per-dimension lengths. Every
// dimension must have at least two nodes (a 1-ring has no links).
func New(dims ...int) (*Shape, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("torus: need at least one dimension")
	}
	s := &Shape{
		dims:    make([]int, len(dims)),
		strides: make([]int, len(dims)),
		size:    1,
	}
	for i, n := range dims {
		if n < 2 {
			return nil, fmt.Errorf("torus: dimension %d has length %d; need >= 2", i, n)
		}
		const maxNodes = 1 << 30
		if s.size > maxNodes/n {
			return nil, fmt.Errorf("torus: shape %v exceeds %d nodes", dims, maxNodes)
		}
		s.dims[i] = n
		s.strides[i] = s.size
		s.size *= n
		if n == 2 {
			s.degree++
		} else {
			s.degree += 2
		}
	}
	s.links = s.size * s.degree
	return s, nil
}

// MustNew is New but panics on error; intended for tests, examples, and
// literals with constant shapes.
func MustNew(dims ...int) *Shape {
	s, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// NAryDCube returns the n-ary d-cube, i.e. the d-dimensional torus with n
// nodes along every dimension.
func NAryDCube(n, d int) (*Shape, error) {
	dims := make([]int, d)
	for i := range dims {
		dims[i] = n
	}
	return New(dims...)
}

// Hypercube returns the d-dimensional binary hypercube, modelled as the
// 2-ary d-cube (one directed link per node per dimension).
func Hypercube(d int) (*Shape, error) {
	return NAryDCube(2, d)
}

// Dims returns the number of dimensions d.
func (s *Shape) Dims() int { return len(s.dims) }

// Dim returns the number of nodes along dimension i.
func (s *Shape) Dim(i int) int { return s.dims[i] }

// DimLengths returns a copy of the per-dimension lengths.
func (s *Shape) DimLengths() []int {
	out := make([]int, len(s.dims))
	copy(out, s.dims)
	return out
}

// Size returns the total number of nodes N.
func (s *Shape) Size() int { return s.size }

// Degree returns the number of outgoing directed links per node
// (2 per dimension of length >= 3, 1 per dimension of length 2). The paper
// calls this d_ave; for a torus every node has the same degree.
func (s *Shape) Degree() int { return s.degree }

// Links returns the total number of directed links L = N * Degree.
func (s *Shape) Links() int { return s.links }

// Symmetric reports whether all dimensions have equal length (the shape is
// an n-ary d-cube).
func (s *Shape) Symmetric() bool {
	for _, n := range s.dims[1:] {
		if n != s.dims[0] {
			return false
		}
	}
	return true
}

// String renders the shape as "n1x n2 x ... x nd torus".
func (s *Shape) String() string {
	parts := make([]string, len(s.dims))
	for i, n := range s.dims {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, "x") + " torus"
}

// Coord returns the coordinate of node u along dimension i.
func (s *Shape) Coord(u Node, i int) int {
	return int(u) / s.strides[i] % s.dims[i]
}

// Coords decodes all coordinates of u into buf (reused if large enough).
func (s *Shape) Coords(u Node, buf []int) []int {
	if cap(buf) < len(s.dims) {
		buf = make([]int, len(s.dims))
	}
	buf = buf[:len(s.dims)]
	rem := int(u)
	for i, n := range s.dims {
		buf[i] = rem % n
		rem /= n
	}
	return buf
}

// Node encodes coordinates into a node ID. Coordinates must be in range.
func (s *Shape) Node(coords []int) Node {
	id := 0
	for i := len(coords) - 1; i >= 0; i-- {
		id = id*s.dims[i] + coords[i]
	}
	return Node(id)
}

// Valid reports whether u is a node of this shape.
func (s *Shape) Valid(u Node) bool { return u >= 0 && int(u) < s.size }

// Neighbor returns the node one hop from u along dimension i in direction
// dir.
func (s *Shape) Neighbor(u Node, i int, dir Dir) Node {
	n, stride := s.dims[i], s.strides[i]
	c := int(u) / stride % n
	var nc int
	if dir == Plus {
		nc = c + 1
		if nc == n {
			nc = 0
		}
	} else {
		nc = c - 1
		if nc < 0 {
			nc = n - 1
		}
	}
	return u + Node((nc-c)*stride)
}

// DirsInDim returns how many outgoing directions dimension i offers per
// node: 1 for 2-rings, 2 otherwise.
func (s *Shape) DirsInDim(i int) int {
	if s.dims[i] == 2 {
		return 1
	}
	return 2
}

// RingOffset returns the coordinate offset (b - a) mod n along dimension i,
// in [0, n).
func (s *Shape) RingOffset(a, b Node, i int) int {
	n := s.dims[i]
	d := (s.Coord(b, i) - s.Coord(a, i)) % n
	if d < 0 {
		d += n
	}
	return d
}

// RingDist returns the shortest ring distance min(delta, n-delta) for an
// offset delta in [0, n) along a ring of length n.
func RingDist(delta, n int) int {
	if delta > n-delta {
		return n - delta
	}
	return delta
}

// Distance returns the shortest-path (Lee) distance between a and b.
func (s *Shape) Distance(a, b Node) int {
	total := 0
	for i := range s.dims {
		total += RingDist(s.RingOffset(a, b, i), s.dims[i])
	}
	return total
}

// Diameter returns the network diameter, sum of floor(n_i/2).
func (s *Shape) Diameter() int {
	total := 0
	for _, n := range s.dims {
		total += n / 2
	}
	return total
}

// ringDistSum returns the sum of ring distances from a fixed node to every
// node of an n-ring (including itself, which contributes 0): n^2/4 for even
// n and (n^2-1)/4 for odd n.
func ringDistSum(n int) int {
	return n * n / 4 // integer division floors the odd case to (n^2-1)/4
}

// AvgDimDistance returns the exact expected ring distance along dimension i
// from a node to a destination chosen uniformly among the other N-1 nodes.
// This is the per-task expected number of dimension-i transmissions for
// shortest-path unicast routing, the quantity the paper approximates as
// floor(n_i/4) in Section 4.
func (s *Shape) AvgDimDistance(i int) float64 {
	// Destinations uniform over the N-1 non-source nodes: each coordinate
	// offset k in dimension i appears N/n_i times among all N destination
	// tuples, and excluding the source removes one zero-distance tuple.
	return float64(s.size) * float64(ringDistSum(s.dims[i])) /
		(float64(s.dims[i]) * float64(s.size-1))
}

// PaperDimDistance returns the paper's Section 4 approximation floor(n_i/4)
// of the average dimension-i ring distance.
func (s *Shape) PaperDimDistance(i int) int { return s.dims[i] / 4 }

// AvgDistance returns the exact average shortest-path distance D_ave over
// destinations uniform among the other N-1 nodes.
func (s *Shape) AvgDistance() float64 {
	total := 0.0
	for i := range s.dims {
		total += s.AvgDimDistance(i)
	}
	return total
}

// LinkID identifies a directed link by a dense index in [0, LinkSlots()).
// Slots for direction Minus in dimensions of length 2 exist in the index
// space but are never valid links; use ValidLink to filter.
type LinkID int32

// LinkSlots returns the size of the link index space, Size * Dims * 2.
func (s *Shape) LinkSlots() int { return s.size * len(s.dims) * 2 }

// Link returns the ID of the outgoing link of node u along dimension i in
// direction dir.
func (s *Shape) Link(u Node, i int, dir Dir) LinkID {
	return LinkID((int(u)*len(s.dims)+i)*2 + DirIndex(dir))
}

// LinkSrc returns the node that owns (transmits on) link l.
func (s *Shape) LinkSrc(l LinkID) Node {
	return Node(int(l) / 2 / len(s.dims))
}

// LinkDim returns the dimension link l belongs to.
func (s *Shape) LinkDim(l LinkID) int {
	return int(l) / 2 % len(s.dims)
}

// LinkDir returns the ring direction of link l.
func (s *Shape) LinkDir(l LinkID) Dir {
	return DirFromIndex(int(l) & 1)
}

// LinkDst returns the node at the receiving end of link l.
func (s *Shape) LinkDst(l LinkID) Node {
	return s.Neighbor(s.LinkSrc(l), s.LinkDim(l), s.LinkDir(l))
}

// LinkTables returns dense per-LinkID lookup tables for LinkDst and
// LinkDim, indexed by LinkID over [0, LinkSlots()). They are built once per
// shape on first use and shared by every caller, so hot loops (the
// simulator processes one LinkDst lookup per packet hop) avoid the
// div/mod chains of the accessor methods. Callers must treat the returned
// slices as read-only. Entries for invalid link slots (the Minus direction
// of 2-rings) hold the dimension but a zero destination; filter with
// ValidLink where it matters.
func (s *Shape) LinkTables() (dst []Node, dim []int32) {
	s.linkOnce.Do(func() {
		slots := s.LinkSlots()
		dstTab := make([]Node, slots)
		dimTab := make([]int32, slots)
		for l := 0; l < slots; l++ {
			id := LinkID(l)
			dimTab[l] = int32(s.LinkDim(id))
			if s.ValidLink(id) {
				dstTab[l] = s.LinkDst(id)
			}
		}
		s.linkDstTab, s.linkDimTab = dstTab, dimTab
	})
	return s.linkDstTab, s.linkDimTab
}

// ValidLink reports whether slot l is a real link (excludes the unused
// Minus direction of 2-rings).
func (s *Shape) ValidLink(l LinkID) bool {
	if l < 0 || int(l) >= s.LinkSlots() {
		return false
	}
	return s.LinkDir(l) == Plus || s.dims[s.LinkDim(l)] > 2
}
