package prioritystar

import (
	"math"
	"strings"
	"testing"
)

// TestPublicQuickstart exercises the documented quick-start flow end to end.
func TestPublicQuickstart(t *testing.T) {
	shape, err := NewTorus(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := RatesForRho(shape, 0.8, 1, 1, ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := PrioritySTAR(shape, rates, ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{
		Shape: shape, Scheme: scheme, Rates: rates, Seed: 1,
		Warmup: 1000, Measure: 4000, Drain: 1500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reception.Count() == 0 {
		t.Fatal("no receptions recorded")
	}
	// Above the lower bound, below an order-of-magnitude multiple.
	lb := ReceptionLowerBound(shape, 0.8)
	if res.Reception.Mean() < lb {
		t.Errorf("measured delay %g below the oblivious lower bound %g", res.Reception.Mean(), lb)
	}
	if res.Reception.Mean() > 10*lb {
		t.Errorf("measured delay %g implausibly above the bound %g", res.Reception.Mean(), lb)
	}
}

func TestPublicTopologyConstructors(t *testing.T) {
	if _, err := NewTorus(); err == nil {
		t.Error("empty torus should fail")
	}
	c, err := NAryDCube(4, 3)
	if err != nil || c.Size() != 64 {
		t.Errorf("NAryDCube: %v, %v", c, err)
	}
	h, err := Hypercube(5)
	if err != nil || h.Size() != 32 || h.Degree() != 5 {
		t.Errorf("Hypercube: %v, %v", h, err)
	}
}

func TestPublicSchemeConstructors(t *testing.T) {
	s, _ := NewTorus(4, 8)
	rates, _ := RatesForRho(s, 0.5, 0.5, 1, ExactDistance)
	if sch, err := PrioritySTAR3(s, rates, ExactDistance); err != nil || sch.Discipline != ThreeLevel {
		t.Error("PrioritySTAR3 wrong")
	}
	if sch, err := STARFCFS(s, rates, ExactDistance); err != nil || sch.Discipline != FCFS {
		t.Error("STARFCFS wrong")
	}
	if sch, err := DimOrderFCFS(s); err != nil || sch.Rotation != FixedEnding {
		t.Error("DimOrderFCFS wrong")
	}
	if sch, err := NewScheme(s, TwoLevel, UniformRotation, rates, ExactDistance); err != nil || sch.Rotation != UniformRotation {
		t.Error("NewScheme wrong")
	}
}

func TestPublicBalance(t *testing.T) {
	s, _ := NewTorus(4, 8)
	v, err := BalanceBroadcastOnly(s)
	if err != nil || !v.Feasible {
		t.Fatalf("BalanceBroadcastOnly: %v %v", v, err)
	}
	if mt := MaxThroughput(s, v.X, 1, 0, ExactDistance); math.Abs(mt-1) > 1e-6 {
		t.Errorf("balanced MaxThroughput = %g", mt)
	}
	h, err := BalanceHeterogeneous(s, 0.01, 0.05, ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range h.X {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("hetero vector sums to %g", sum)
	}
}

func TestPublicBroadcastTree(t *testing.T) {
	s, _ := NewTorus(5, 5)
	rates, _ := RatesForRho(s, 0.5, 1, 1, ExactDistance)
	sch, _ := PrioritySTAR(s, rates, ExactDistance)
	tree := BroadcastTree(sch, 12, 1)
	if len(tree) != 25 {
		t.Fatalf("tree has %d nodes", len(tree))
	}
	for v, tn := range tree {
		if Node(v) != 12 && tn.Depth == 0 {
			t.Errorf("node %d unreachable", v)
		}
	}
}

func TestPublicFigures(t *testing.T) {
	ids := FigureIDs()
	if len(ids) == 0 {
		t.Fatal("no figures registered")
	}
	exp, err := Figure("fig2+5", Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink further: run only the low-rho point with one rep for speed.
	exp.Rhos = []float64{0.3}
	exp.Reps = 1
	exp.Measure = 2000
	exp.Warmup = 500
	exp.Drain = 500
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table(MetricReception)
	if !strings.Contains(table, "priority-STAR") {
		t.Errorf("table missing scheme name:\n%s", table)
	}
	csv := res.CSV(MetricBroadcast)
	if !strings.Contains(csv, "rho,") {
		t.Error("csv missing header")
	}
}

func TestPublicLengthDists(t *testing.T) {
	if FixedLength(2).Mean() != 2 {
		t.Error("FixedLength mean")
	}
	if GeometricLength(3).Mean() != 3 {
		t.Error("GeometricLength mean")
	}
}

func TestPublicBounds(t *testing.T) {
	s, _ := NewTorus(8, 8)
	if MD1Wait(0.5) != 0.5 {
		t.Error("MD1Wait(0.5) should be 0.5")
	}
	if BroadcastLowerBound(s, 0.5) <= ReceptionLowerBound(s, 0.5) {
		t.Error("broadcast bound should exceed reception bound")
	}
}

func TestPublicStaticTasks(t *testing.T) {
	s, _ := NewTorus(4, 4)
	sch, err := PrioritySTAR(s, Rates{LambdaB: 1}, ExactDistance)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStatic(s, sch, SingleBroadcast, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != int64(s.Diameter()) {
		t.Errorf("single broadcast makespan %d, want %d", res.Makespan, s.Diameter())
	}
	if StaticLowerBound(s, MultinodeBroadcast) < 1 {
		t.Error("MNB bound must be positive")
	}
}

func TestPublicFiniteEngine(t *testing.T) {
	ring, _ := NewTorus(4)
	var preload []Flow
	for i := 0; i < 4; i++ {
		preload = append(preload, Flow{Src: Node(i), Dst: Node((i + 2) % 4)})
	}
	one, err := SimulateFinite(FiniteConfig{Shape: ring, VCs: 1, Capacity: 1, Preload: preload, Slots: 3000})
	if err != nil {
		t.Fatal(err)
	}
	two, err := SimulateFinite(FiniteConfig{Shape: ring, VCs: 2, Capacity: 1, Preload: preload, Slots: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !one.Deadlocked || two.Deadlocked {
		t.Errorf("deadlock: 1 VC %v (want true), 2 VCs %v (want false)", one.Deadlocked, two.Deadlocked)
	}
}

func TestPublicDelayCappedThroughput(t *testing.T) {
	got, err := DelayCappedThroughput([]int{4, 4}, PrioritySTARSpec, 1, ExactDistance,
		CapReception, 4, 1500, 2, 0.2, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.2 || got > 1.0 {
		t.Errorf("capped throughput %g out of range", got)
	}
}

func TestPublicStabilitySearch(t *testing.T) {
	got, err := StabilitySearch([]int{4, 4}, PrioritySTARSpec, 1, ExactDistance,
		2000, 1, 3, 0.6, 1.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0.8 {
		t.Errorf("max stable rho = %g, want >= 0.8", got)
	}
}
