package prioritystar_test

import (
	"fmt"

	"prioritystar"
)

// The Eq. (2) vector for an asymmetric 4x8 torus skews the ending-dimension
// choice toward the short dimension so every link carries the same load.
func ExampleBalanceBroadcastOnly() {
	shape, _ := prioritystar.NewTorus(4, 8)
	v, _ := prioritystar.BalanceBroadcastOnly(shape)
	fmt.Printf("feasible=%v x=[%.4f %.4f]\n", v.Feasible, v.X[0], v.X[1])
	fmt.Printf("max throughput: %.2f\n", prioritystar.MaxThroughput(shape, v.X, 1, 0, prioritystar.ExactDistance))
	// Output:
	// feasible=true x=[0.5952 0.4048]
	// max throughput: 1.00
}

// A STAR broadcast tree spans every node along shortest paths; the
// ending-dimension hops (the bulk of the tree) are the low-priority ones.
func ExampleBroadcastTree() {
	shape, _ := prioritystar.NewTorus(5, 5)
	scheme, _ := prioritystar.PrioritySTAR(shape, prioritystar.Rates{LambdaB: 1}, prioritystar.ExactDistance)
	tree := prioritystar.BroadcastTree(scheme, 0, 1)
	high, low := 0, 0
	for v, tn := range tree {
		if v == 0 {
			continue
		}
		if tn.Class == 0 {
			high++
		} else {
			low++
		}
	}
	fmt.Printf("nodes=%d high-priority=%d low-priority=%d\n", len(tree), high, low)
	// Output:
	// nodes=25 high-priority=4 low-priority=20
}

// The oblivious lower bound Omega(d + 1/(1-rho)) instantiated on an 8x8
// torus: average distance plus M/D/1 queueing.
func ExampleReceptionLowerBound() {
	shape, _ := prioritystar.NewTorus(8, 8)
	for _, rho := range []float64{0.0, 0.5, 0.9} {
		fmt.Printf("rho=%.1f bound=%.2f\n", rho, prioritystar.ReceptionLowerBound(shape, rho))
	}
	// Output:
	// rho=0.0 bound=4.06
	// rho=0.5 bound=4.56
	// rho=0.9 bound=8.56
}

// Static-task lower bounds on an 8x8 torus: the diameter for a single
// broadcast, the per-node bandwidth bound for MNB.
func ExampleStaticLowerBound() {
	shape, _ := prioritystar.NewTorus(8, 8)
	fmt.Println(prioritystar.StaticLowerBound(shape, prioritystar.SingleBroadcast))
	fmt.Println(prioritystar.StaticLowerBound(shape, prioritystar.MultinodeBroadcast))
	// Output:
	// 8
	// 16
}

// Converting a throughput factor into per-node arrival rates and back.
func ExampleRatesForRho() {
	shape, _ := prioritystar.NewTorus(8, 8)
	rates, _ := prioritystar.RatesForRho(shape, 0.8, 1, 1, prioritystar.ExactDistance)
	fmt.Printf("lambdaB=%.5f rho=%.2f\n", rates.LambdaB, rates.Rho(shape, 1, prioritystar.ExactDistance))
	// Output:
	// lambdaB=0.05079 rho=0.80
}
