// Benchmarks regenerating every figure of the paper's evaluation section,
// plus the ablations called out in DESIGN.md. Each benchmark runs the
// figure's workload at a representative operating point and reports the
// figure's metric via b.ReportMetric (delay in slots, utilization as a
// fraction), so `go test -bench=. -benchmem` both exercises the full system
// and prints the reproduced numbers. The full rho sweeps behind the figures
// are produced by `go run ./cmd/figures`.
package prioritystar

import (
	"testing"
)

// benchMetric selects what a figure benchmark reports from a run.
type benchMetric int

const (
	benchReception benchMetric = iota
	benchBroadcast
	benchUnicast
	benchMaxDimUtil
)

func (m benchMetric) read(r *SimResult) float64 {
	switch m {
	case benchBroadcast:
		return r.Broadcast.Mean()
	case benchUnicast:
		return r.Unicast.Mean()
	case benchMaxDimUtil:
		return r.MaxDimUtilization
	default:
		return r.Reception.Mean()
	}
}

func (m benchMetric) unit() string {
	switch m {
	case benchBroadcast:
		return "bcast-delay-slots"
	case benchUnicast:
		return "unicast-delay-slots"
	case benchMaxDimUtil:
		return "max-dim-util"
	default:
		return "recv-delay-slots"
	}
}

// benchRun executes one simulation per iteration and reports the average of
// the figure metric across iterations.
func benchRun(b *testing.B, dims []int, spec SchemeSpec, rho, frac float64,
	length LengthDist, metric benchMetric) {
	b.Helper()
	shape, err := NewTorus(dims...)
	if err != nil {
		b.Fatal(err)
	}
	rates, err := RatesForRho(shape, rho, frac, length.Mean(), ExactDistance)
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := spec.Build(shape, rates, ExactDistance)
	if err != nil {
		b.Fatal(err)
	}
	// One Runner for the whole benchmark: after the first iteration the
	// engine reuses its queues, wheel, and task table, so -benchmem shows
	// the allocation-free steady state a sweep worker sees.
	var runner SimRunner
	const slots = 600 + 2500 + 1200
	sum := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(SimConfig{
			Shape: shape, Scheme: scheme, Rates: rates, Length: length,
			Seed:   uint64(i + 1),
			Warmup: 600, Measure: 2500, Drain: 1200,
		})
		if err != nil {
			b.Fatal(err)
		}
		sum += metric.read(res)
	}
	b.ReportMetric(sum/float64(b.N), metric.unit())
	b.ReportMetric(float64(slots)*float64(b.N)/b.Elapsed().Seconds(), "slots/s")
}

// benchFigure runs a two-scheme figure comparison as sub-benchmarks.
func benchFigure(b *testing.B, dims []int, rho float64, metric benchMetric) {
	b.Run("prioritySTAR", func(b *testing.B) {
		benchRun(b, dims, PrioritySTARSpec, rho, 1, LengthDist{}, metric)
	})
	b.Run("FCFSdirect", func(b *testing.B) {
		benchRun(b, dims, FCFSDirectSpec, rho, 1, LengthDist{}, metric)
	})
}

// --- Fig. 1: STAR tree construction --------------------------------------

// BenchmarkTreeConstruction measures enumerating the full priority STAR
// spanning tree of a 16x16 torus (Fig. 1's object, scaled up).
func BenchmarkTreeConstruction(b *testing.B) {
	shape, err := NewTorus(16, 16)
	if err != nil {
		b.Fatal(err)
	}
	rates, _ := RatesForRho(shape, 0.5, 1, 1, ExactDistance)
	scheme, err := PrioritySTAR(shape, rates, ExactDistance)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := BroadcastTree(scheme, Node(i%shape.Size()), i%2)
		if len(tree) != shape.Size() {
			b.Fatal("bad tree")
		}
	}
}

// --- Figs. 2-7: broadcast-only delay curves ------------------------------

// BenchmarkFig2ReceptionDelay8x8 reproduces Fig. 2's high-load regime.
func BenchmarkFig2ReceptionDelay8x8(b *testing.B) {
	benchFigure(b, []int{8, 8}, 0.8, benchReception)
}

// BenchmarkFig3ReceptionDelay16x16 reproduces Fig. 3.
func BenchmarkFig3ReceptionDelay16x16(b *testing.B) {
	benchFigure(b, []int{16, 16}, 0.8, benchReception)
}

// BenchmarkFig4ReceptionDelay8x8x8 reproduces Fig. 4 (the gap grows with d).
func BenchmarkFig4ReceptionDelay8x8x8(b *testing.B) {
	benchFigure(b, []int{8, 8, 8}, 0.8, benchReception)
}

// BenchmarkFig5BroadcastDelay8x8 reproduces Fig. 5.
func BenchmarkFig5BroadcastDelay8x8(b *testing.B) {
	benchFigure(b, []int{8, 8}, 0.8, benchBroadcast)
}

// BenchmarkFig6BroadcastDelay16x16 reproduces Fig. 6.
func BenchmarkFig6BroadcastDelay16x16(b *testing.B) {
	benchFigure(b, []int{16, 16}, 0.8, benchBroadcast)
}

// BenchmarkFig7BroadcastDelay8x8x8 reproduces Fig. 7.
func BenchmarkFig7BroadcastDelay8x8x8(b *testing.B) {
	benchFigure(b, []int{8, 8, 8}, 0.8, benchBroadcast)
}

// --- Fig. 8 / Section 4: heterogeneous communications --------------------

// BenchmarkFig8HeteroBalanced compares joint (Eq. 4) and separate (Eq. 2)
// balancing on the asymmetric 4x4x8 torus at 85% load with a 50/50 traffic
// split; the reported max-dim-util shows the separate scheme's long
// dimension saturating (>= 1) while the joint scheme stays at rho.
func BenchmarkFig8HeteroBalanced(b *testing.B) {
	b.Run("joint", func(b *testing.B) {
		benchRun(b, []int{4, 4, 8}, PrioritySTARSpec, 0.85, 0.5, LengthDist{}, benchMaxDimUtil)
	})
	b.Run("separate", func(b *testing.B) {
		benchRun(b, []int{4, 4, 8}, SeparateSpec, 0.85, 0.5, LengthDist{}, benchMaxDimUtil)
	})
}

// BenchmarkFig8HeteroUnicastDelay shows Section 4's O(d) unicast delay:
// prioritized unicast stays near the uncontended distance while FCFS grows
// with 1/(1-rho).
func BenchmarkFig8HeteroUnicastDelay(b *testing.B) {
	for _, spec := range []SchemeSpec{PrioritySTAR3Spec, PrioritySTARSpec, FCFSDirectSpec} {
		b.Run(spec.Name, func(b *testing.B) {
			benchRun(b, []int{8, 8}, spec, 0.85, 0.5, LengthDist{}, benchUnicast)
		})
	}
}

// BenchmarkFig8ConcurrentTasks measures the number of simultaneously active
// broadcast tasks via Little's law (Fig. 8's caption quantities).
func BenchmarkFig8ConcurrentTasks(b *testing.B) {
	shape, err := NewTorus(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	rates, err := RatesForRho(shape, 0.8, 0.5, 1, ExactDistance)
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := PrioritySTAR3(shape, rates, ExactDistance)
	if err != nil {
		b.Fatal(err)
	}
	bSum, uSum := 0.0, 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(SimConfig{
			Shape: shape, Scheme: scheme, Rates: rates, Seed: uint64(i + 1),
			Warmup: 600, Measure: 2500, Drain: 1200,
		})
		if err != nil {
			b.Fatal(err)
		}
		bSum += rates.LambdaB * float64(shape.Size()) * res.Broadcast.Mean()
		uSum += rates.LambdaR * float64(shape.Size()) * res.Unicast.Mean()
	}
	b.ReportMetric(bSum/float64(b.N), "bcast-tasks-in-flight")
	b.ReportMetric(uSum/float64(b.N), "unicast-tasks-in-flight")
}

// --- Ablations (DESIGN.md A1-A5) ------------------------------------------

// BenchmarkAblationSchemeMatrix isolates rotation and priority on the
// asymmetric 4x8 torus (A1).
func BenchmarkAblationSchemeMatrix(b *testing.B) {
	specs := []SchemeSpec{
		PrioritySTARSpec, FCFSDirectSpec,
		{Name: "uniform-prio", Discipline: TwoLevel, Rotation: UniformRotation},
		{Name: "uniform-FCFS", Discipline: FCFS, Rotation: UniformRotation},
		{Name: "dim-order-prio", Discipline: TwoLevel, Rotation: FixedEnding},
		DimOrderSpec,
	}
	for _, spec := range specs {
		b.Run(spec.Name, func(b *testing.B) {
			benchRun(b, []int{4, 8}, spec, 0.7, 1, LengthDist{}, benchReception)
		})
	}
}

// BenchmarkAblationVariableLength checks the Section 3.2 variable-length
// claim with geometric lengths of mean 4 (A2).
func BenchmarkAblationVariableLength(b *testing.B) {
	length := GeometricLength(4)
	b.Run("prioritySTAR", func(b *testing.B) {
		benchRun(b, []int{8, 8}, PrioritySTARSpec, 0.7, 1, length, benchReception)
	})
	b.Run("FCFSdirect", func(b *testing.B) {
		benchRun(b, []int{8, 8}, FCFSDirectSpec, 0.7, 1, length, benchReception)
	})
}

// BenchmarkAblationHypercube runs the 2-ary 8-cube (binary hypercube)
// special case (A3).
func BenchmarkAblationHypercube(b *testing.B) {
	dims := []int{2, 2, 2, 2, 2, 2, 2, 2}
	b.Run("prioritySTAR", func(b *testing.B) {
		benchRun(b, dims, PrioritySTARSpec, 0.8, 1, LengthDist{}, benchReception)
	})
	b.Run("FCFSdirect", func(b *testing.B) {
		benchRun(b, dims, FCFSDirectSpec, 0.8, 1, LengthDist{}, benchReception)
	})
}

// BenchmarkAblationInfeasibleClamp exercises the Section 4 infeasibility
// fallback: on a 4x32 torus dominated by unicast traffic the Eq. 4 solution
// leaves the simplex and is clamped to (1, 0) (A4).
func BenchmarkAblationInfeasibleClamp(b *testing.B) {
	benchRun(b, []int{4, 32}, PrioritySTARSpec, 0.7, 0.1, LengthDist{}, benchMaxDimUtil)
}

// BenchmarkAblationDistanceModel compares balancing with the paper's
// floor(n/4) distances against exact expectations on 4x4x8 (A5). The floor
// model's residual imbalance shows up as a higher max dimension utilization.
func BenchmarkAblationDistanceModel(b *testing.B) {
	run := func(b *testing.B, model DistanceModel) {
		shape, err := NewTorus(4, 4, 8)
		if err != nil {
			b.Fatal(err)
		}
		rates, err := RatesForRho(shape, 0.85, 0.5, 1, ExactDistance)
		if err != nil {
			b.Fatal(err)
		}
		scheme, err := PrioritySTAR(shape, rates, model)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := Simulate(SimConfig{
				Shape: shape, Scheme: scheme, Rates: rates, Seed: uint64(i + 1),
				Warmup: 600, Measure: 2500, Drain: 1200,
			})
			if err != nil {
				b.Fatal(err)
			}
			sum += res.MaxDimUtilization
		}
		b.ReportMetric(sum/float64(b.N), "max-dim-util")
	}
	b.Run("exact", func(b *testing.B) { run(b, ExactDistance) })
	b.Run("paper-floor", func(b *testing.B) { run(b, PaperFloorDistance) })
}

// BenchmarkDelayCappedThroughput reproduces the Section 3.2 delay-budget
// comparison (A6): under a reception-delay cap, priority STAR sustains
// strictly higher throughput than FCFS.
func BenchmarkDelayCappedThroughput(b *testing.B) {
	for _, spec := range []SchemeSpec{PrioritySTARSpec, FCFSDirectSpec} {
		b.Run(spec.Name, func(b *testing.B) {
			sum := 0.0
			for i := 0; i < b.N; i++ {
				rho, err := DelayCappedThroughput([]int{8, 8}, spec, 1, ExactDistance,
					CapReception, 6.5, 2000, uint64(i+1), 0.2, 1.0, 0.05)
				if err != nil {
					b.Fatal(err)
				}
				sum += rho
			}
			b.ReportMetric(sum/float64(b.N), "capped-max-rho")
		})
	}
}

// BenchmarkStaticTasks measures the static communication tasks of the
// paper's introduction (single broadcast, MNB, total exchange) on an 8x8
// torus, reporting makespan efficiency against the classical bounds.
func BenchmarkStaticTasks(b *testing.B) {
	shape, err := NewTorus(8, 8)
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := PrioritySTAR(shape, Rates{LambdaB: 1}, ExactDistance)
	if err != nil {
		b.Fatal(err)
	}
	for _, task := range []StaticTask{SingleBroadcast, MultinodeBroadcast, TotalExchange} {
		b.Run(task.String(), func(b *testing.B) {
			sum := 0.0
			for i := 0; i < b.N; i++ {
				res, err := RunStatic(shape, scheme, task, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				sum += res.Efficiency
			}
			b.ReportMetric(sum/float64(b.N), "efficiency")
		})
	}
}

// BenchmarkFiniteBufferVC measures the finite-buffer engine with the
// paper's 2-VC dateline configuration under sustained load.
func BenchmarkFiniteBufferVC(b *testing.B) {
	shape, err := NewTorus(6, 6)
	if err != nil {
		b.Fatal(err)
	}
	delivered := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SimulateFinite(FiniteConfig{
			Shape: shape, VCs: 2, Capacity: 2, LambdaR: 0.2,
			Seed: uint64(i + 1), Slots: 5000, StopInjection: 4000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deadlocked {
			b.Fatal("2-VC run deadlocked")
		}
		delivered += res.Delivered
	}
	b.ReportMetric(float64(delivered)/float64(b.N), "packets-delivered")
}

// BenchmarkStabilitySearch measures the bisection-based maximum-stable-rho
// estimator used by the Section 1 throughput comparisons.
func BenchmarkStabilitySearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rho, err := StabilitySearch([]int{4, 8}, PrioritySTARSpec, 1, ExactDistance,
			1500, 1, uint64(i+1), 0.6, 1.1, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rho, "max-stable-rho")
	}
}
