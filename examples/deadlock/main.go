// Deadlock demonstrates why the SDC algorithm of Section 3.1 uses two
// virtual channels: with finite buffers, minimal routing around a
// wraparound ring deadlocks, and the VC1/VC2 dateline split removes the
// cyclic buffer dependency. The first scenario is the classic four-packet
// cycle on a 4-ring; the second is sustained random traffic on a 6x6 torus
// through single-slot buffers.
package main

import (
	"fmt"
	"log"

	"prioritystar"
)

func main() {
	ring, err := prioritystar.NewTorus(4)
	if err != nil {
		log.Fatal(err)
	}
	// Four packets, each destined two hops clockwise: every buffer fills
	// and every packet waits for the next one's buffer.
	var preload []prioritystar.Flow
	for i := 0; i < 4; i++ {
		preload = append(preload, prioritystar.Flow{
			Src: prioritystar.Node(i), Dst: prioritystar.Node((i + 2) % 4),
		})
	}
	fmt.Println("scenario 1: 4-ring, capacity-1 buffers, 4 clockwise packets")
	for _, vcs := range []int{1, 2} {
		res, err := prioritystar.SimulateFinite(prioritystar.FiniteConfig{
			Shape: ring, VCs: vcs, Capacity: 1, Preload: preload, Slots: 5000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d VC(s): delivered %d/4, deadlocked=%v\n", vcs, res.Delivered, res.Deadlocked)
	}

	torus, err := prioritystar.NewTorus(6, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nscenario 2: 6x6 torus, capacity-1 buffers, sustained random unicast")
	for _, vcs := range []int{1, 2} {
		res, err := prioritystar.SimulateFinite(prioritystar.FiniteConfig{
			Shape: torus, VCs: vcs, Capacity: 1, LambdaR: 0.35, Seed: 7,
			Slots: 40000, StopInjection: 30000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d VC(s): injected %d, delivered %d, deadlocked=%v",
			vcs, res.Injected, res.Delivered, res.Deadlocked)
		if res.Deadlocked {
			fmt.Printf(" (at slot %d)", res.DeadlockSlot)
		} else {
			fmt.Printf(", avg delay %.2f slots, remaining %d", res.Delay.Mean(), res.Remaining)
		}
		fmt.Println()
	}
	fmt.Println("\nthe 2-VC dateline split is the same VC1/VC2 rule the paper's SDC")
	fmt.Println("broadcast algorithm assigns to pre-/post-wraparound dimensions.")
}
