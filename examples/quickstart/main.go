// Quickstart: random broadcasting on an 8x8 torus at 80% load, comparing
// the paper's priority STAR scheme against the FCFS baseline — a miniature
// of Figs. 2 and 5.
package main

import (
	"fmt"
	"log"

	"prioritystar"
)

func main() {
	shape, err := prioritystar.NewTorus(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	const rho = 0.8
	rates, err := prioritystar.RatesForRho(shape, rho, 1 /* broadcast-only */, 1, prioritystar.ExactDistance)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("random broadcasting on %s at rho=%.2f (lambdaB=%.5f per node per slot)\n\n",
		shape, rho, rates.LambdaB)

	for _, build := range []struct {
		name string
		fn   func(*prioritystar.Shape, prioritystar.Rates, prioritystar.DistanceModel) (*prioritystar.Scheme, error)
	}{
		{"priority STAR", prioritystar.PrioritySTAR},
		{"FCFS direct  ", prioritystar.STARFCFS},
	} {
		scheme, err := build.fn(shape, rates, prioritystar.ExactDistance)
		if err != nil {
			log.Fatal(err)
		}
		res, err := prioritystar.Simulate(prioritystar.SimConfig{
			Shape: shape, Scheme: scheme, Rates: rates, Seed: 42,
			Warmup: 3000, Measure: 10000, Drain: 4000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  reception delay %6.2f slots   broadcast delay %6.2f slots   link utilization %.3f\n",
			build.name, res.Reception.Mean(), res.Broadcast.Mean(), res.AvgUtilization)
	}
	fmt.Printf("\noblivious lower bound on reception delay: %.2f slots\n",
		prioritystar.ReceptionLowerBound(shape, rho))
}
