// Staticcomm measures the classical static communication tasks of the
// paper's introduction — single broadcast, multinode broadcast (MNB), and
// total exchange (TE) — as slot-0 impulses through the STAR machinery, and
// compares the makespans against the diameter/bandwidth lower bounds.
package main

import (
	"fmt"
	"log"

	"prioritystar"
)

func main() {
	for _, dims := range [][]int{{8, 8}, {4, 8}} {
		shape, err := prioritystar.NewTorus(dims...)
		if err != nil {
			log.Fatal(err)
		}
		rates := prioritystar.Rates{LambdaB: 1}
		scheme, err := prioritystar.PrioritySTAR(shape, rates, prioritystar.ExactDistance)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("static communication on %s (balanced STAR trees)\n", shape)
		for _, task := range []prioritystar.StaticTask{
			prioritystar.SingleBroadcast,
			prioritystar.MultinodeBroadcast,
			prioritystar.TotalExchange,
		} {
			res, err := prioritystar.RunStatic(shape, scheme, task, 13)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-19s makespan %4d slots   lower bound %4d   efficiency %.2f\n",
				res.Task, res.Makespan, res.LowerBound, res.Efficiency)
		}
		fmt.Println()
	}
	fmt.Println("the balanced rotation that maximizes dynamic throughput also keeps")
	fmt.Println("one-shot MNB and TE makespans within a small factor of the bounds.")
}
