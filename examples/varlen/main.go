// Varlen exercises the Section 3.2 claim that priority STAR applies,
// without modification, to packets of variable length: broadcast packets
// with geometrically distributed lengths (mean 4 slots) on an 8x8 torus.
package main

import (
	"fmt"
	"log"

	"prioritystar"
)

func main() {
	shape, err := prioritystar.NewTorus(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	length := prioritystar.GeometricLength(4)
	fmt.Printf("variable-length broadcasting on %s (geometric lengths, mean %.0f slots)\n\n",
		shape, length.Mean())

	for _, rho := range []float64{0.4, 0.7, 0.85} {
		rates, err := prioritystar.RatesForRho(shape, rho, 1, length.Mean(), prioritystar.ExactDistance)
		if err != nil {
			log.Fatal(err)
		}
		prio, err := prioritystar.PrioritySTAR(shape, rates, prioritystar.ExactDistance)
		if err != nil {
			log.Fatal(err)
		}
		fcfs, err := prioritystar.STARFCFS(shape, rates, prioritystar.ExactDistance)
		if err != nil {
			log.Fatal(err)
		}
		cfg := prioritystar.SimConfig{
			Shape: shape, Rates: rates, Length: length, Seed: 99,
			Warmup: 6000, Measure: 20000, Drain: 8000,
		}
		cfg.Scheme = prio
		resP, err := prioritystar.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Scheme = fcfs
		resF, err := prioritystar.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rho=%.2f  reception delay: priority STAR %7.2f | FCFS %7.2f   utilization %.3f\n",
			rho, resP.Reception.Mean(), resF.Reception.Mean(), resP.AvgUtilization)
	}
	fmt.Println("\nwith 4-slot packets the uncontended per-hop time is 4 slots, so delays")
	fmt.Println("are ~4x the unit-length figures; the priority STAR advantage persists.")
}
