// Hetero demonstrates Section 4: heterogeneous unicast + broadcast traffic
// on an asymmetric 4x4x8 torus. Balancing the broadcast rotation jointly
// with the unicast load (Eq. 4) equalizes all link utilizations and keeps
// the network stable at a load where separate balancing (the paper's model
// of previous methods) has already saturated its long dimension.
package main

import (
	"fmt"
	"log"

	"prioritystar"
)

func main() {
	shape, err := prioritystar.NewTorus(4, 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	const (
		rho  = 0.9
		frac = 0.5 // 50% of the transmission load from broadcasts
	)
	rates, err := prioritystar.RatesForRho(shape, rho, frac, 1, prioritystar.ExactDistance)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heterogeneous traffic on %s at rho=%.2f (50%% unicast / 50%% broadcast)\n", shape, rho)

	joint, err := prioritystar.BalanceHeterogeneous(shape, rates.LambdaB, rates.LambdaR, prioritystar.ExactDistance)
	if err != nil {
		log.Fatal(err)
	}
	sep, err := prioritystar.BalanceBroadcastOnly(shape)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEq. 4 joint vector:    %v\n", fmtVec(joint.X))
	fmt.Printf("Eq. 2 separate vector: %v\n", fmtVec(sep.X))
	fmt.Printf("predicted max throughput: joint %.3f, separate %.3f (paper: ~1 vs <1, ->2/3 as d grows)\n",
		prioritystar.MaxThroughput(shape, joint.X, rates.LambdaB, rates.LambdaR, prioritystar.ExactDistance),
		prioritystar.MaxThroughput(shape, sep.X, rates.LambdaB, rates.LambdaR, prioritystar.ExactDistance))

	for _, spec := range []prioritystar.SchemeSpec{
		prioritystar.PrioritySTAR3Spec, // joint balance, 3-level priority
		prioritystar.PrioritySTARSpec,  // joint balance, 2-level priority
		prioritystar.SeparateSpec,      // separate balance, FCFS
	} {
		exp := &prioritystar.Experiment{
			ID: "hetero-demo", Title: "hetero demo",
			Dims: []int{4, 4, 8}, Rhos: []float64{rho}, BroadcastFrac: frac,
			Schemes: []prioritystar.SchemeSpec{spec},
			Model:   prioritystar.ExactDistance,
			Warmup:  3000, Measure: 10000, Drain: 4000, Reps: 2, BaseSeed: 7,
		}
		res, err := exp.Run()
		if err != nil {
			log.Fatal(err)
		}
		p := res.Series[0].Points[0]
		status := "stable"
		if p.UnstableReps > 0 {
			status = "UNSTABLE (backlog growing)"
		}
		fmt.Printf("\n%-15s unicast delay %6.2f   reception delay %7.2f   max dim util %.3f   %s\n",
			spec.Name,
			p.Value(prioritystar.MetricUnicast),
			p.Value(prioritystar.MetricReception),
			p.Value(prioritystar.MetricMaxDimUtil), status)
	}
	fmt.Printf("\nuncontended unicast distance (lower bound): %.2f slots\n", shape.AvgDistance())
}

func fmtVec(x []float64) string {
	out := "["
	for i, v := range x {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.4f", v)
	}
	return out + "]"
}
