// Hypercube runs random broadcasting on an 8-dimensional binary hypercube,
// the 2-ary d-cube special case the paper inherits from its companion work
// [21]. Every dimension is a 2-ring with a single link per node, so the
// torus machinery reproduces hypercube routing exactly.
package main

import (
	"fmt"
	"log"

	"prioritystar"
)

func main() {
	const d = 8
	shape, err := prioritystar.Hypercube(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random broadcasting on the %d-cube (%d nodes, degree %d)\n\n", d, shape.Size(), shape.Degree())

	for _, rho := range []float64{0.3, 0.6, 0.9} {
		rates, err := prioritystar.RatesForRho(shape, rho, 1, 1, prioritystar.ExactDistance)
		if err != nil {
			log.Fatal(err)
		}
		prio, err := prioritystar.PrioritySTAR(shape, rates, prioritystar.ExactDistance)
		if err != nil {
			log.Fatal(err)
		}
		fcfs, err := prioritystar.STARFCFS(shape, rates, prioritystar.ExactDistance)
		if err != nil {
			log.Fatal(err)
		}
		cfg := prioritystar.SimConfig{
			Shape: shape, Rates: rates, Seed: 11,
			Warmup: 2000, Measure: 6000, Drain: 2500,
		}
		cfg.Scheme = prio
		resP, err := prioritystar.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Scheme = fcfs
		resF, err := prioritystar.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rho=%.1f  reception delay: priority STAR %6.2f | FCFS %6.2f   (lower bound %.2f)\n",
			rho, resP.Reception.Mean(), resF.Reception.Mean(),
			prioritystar.ReceptionLowerBound(shape, rho))
	}
	fmt.Println("\nnote: in a 2-ring every hop is an 'ending dimension' hop for exactly")
	fmt.Println("one phase, so the priority gap is smaller than in wide tori (n = 2).")
}
