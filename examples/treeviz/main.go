// Treeviz renders the spanning tree of a priority STAR broadcast in a 5x5
// torus — the scenario of the paper's Fig. 1. For each node it shows the
// hop depth and whether the copy arrived on a high- or low-priority
// transmission (the ending dimension's transmissions are low priority).
package main

import (
	"fmt"
	"log"

	"prioritystar"
)

func main() {
	shape, err := prioritystar.NewTorus(5, 5)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := prioritystar.RatesForRho(shape, 0.5, 1, 1, prioritystar.ExactDistance)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := prioritystar.PrioritySTAR(shape, rates, prioritystar.ExactDistance)
	if err != nil {
		log.Fatal(err)
	}

	source := shape.Node([]int{2, 2})
	for ending := 0; ending < shape.Dims(); ending++ {
		tree := prioritystar.BroadcastTree(scheme, source, ending)
		fmt.Printf("STAR broadcast tree on %s, source (2,2), ending dimension %d\n", shape, ending)
		fmt.Println("  cell = depth:priority   (S = source, H = high, L = low/ending-dim)")
		for y := shape.Dim(1) - 1; y >= 0; y-- {
			fmt.Printf("  y=%d |", y)
			for x := 0; x < shape.Dim(0); x++ {
				v := shape.Node([]int{x, y})
				tn := tree[v]
				switch {
				case v == source:
					fmt.Printf("  S  ")
				case tn.Class == 0:
					fmt.Printf(" %d:H ", tn.Depth)
				default:
					fmt.Printf(" %d:L ", tn.Depth)
				}
			}
			fmt.Println()
		}
		high, low := 0, 0
		for v := range tree {
			if prioritystar.Node(v) == source {
				continue
			}
			if tree[v].Class == 0 {
				high++
			} else {
				low++
			}
		}
		fmt.Printf("  transmissions: %d high priority, %d low priority (paper: N/n-1=%d high, N-N/n=%d low)\n\n",
			high, low, shape.Size()/shape.Dim(ending)-1, shape.Size()-shape.Size()/shape.Dim(ending))
	}
}
