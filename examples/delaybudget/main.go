// Delaybudget quantifies the closing remark of the paper's Section 3.2: if
// an application caps the acceptable average reception delay, a
// priority-based scheme like priority STAR sustains a strictly higher
// throughput factor than FCFS under the same budget.
package main

import (
	"fmt"
	"log"

	"prioritystar"
)

func main() {
	shape, err := prioritystar.NewTorus(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delay-budgeted throughput on %s (uncontended reception delay %.2f slots)\n\n",
		shape, shape.AvgDistance())
	fmt.Printf("%10s %16s %16s\n", "budget", "priority STAR", "FCFS direct")
	for _, budget := range []float64{5.0, 6.5, 9.0, 14.0} {
		row := make([]float64, 0, 2)
		for _, spec := range []prioritystar.SchemeSpec{
			prioritystar.PrioritySTARSpec, prioritystar.FCFSDirectSpec,
		} {
			rho, err := prioritystar.DelayCappedThroughput([]int{8, 8}, spec, 1,
				prioritystar.ExactDistance, prioritystar.CapReception, budget,
				3000, 11, 0.2, 1.0, 0.03)
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, rho)
		}
		fmt.Printf("%8.1f   %13.2f    %13.2f\n", budget, row[0], row[1])
	}
	fmt.Println("\neach cell is the largest throughput factor whose average reception")
	fmt.Println("delay stays within the budget; priority buys throughput at every budget.")
}
