// Package prioritystar reproduces "A Priority-based Balanced Routing Scheme
// for Random Broadcasting and Routing in Tori" (Yeh, Varvarigos, Eshoul;
// ICPP 2003): the priority STAR routing scheme for dynamic broadcasting and
// unicast routing in general tori, n-ary d-cubes, and hypercubes, together
// with the slotted store-and-forward network simulator, traffic balancer,
// baselines, and experiment harness used to regenerate every figure of the
// paper's evaluation.
//
// # Quick start
//
//	shape, _ := prioritystar.NewTorus(8, 8)
//	rates, _ := prioritystar.RatesForRho(shape, 0.8, 1, 1, prioritystar.ExactDistance)
//	scheme, _ := prioritystar.PrioritySTAR(shape, rates, prioritystar.ExactDistance)
//	result, _ := prioritystar.Simulate(prioritystar.SimConfig{
//		Shape: shape, Scheme: scheme, Rates: rates,
//		Warmup: 2000, Measure: 10000, Drain: 4000,
//	})
//	fmt.Println("avg reception delay:", result.Reception.Mean())
//
// Predefined experiments reproduce the paper's figures:
//
//	exp, _ := prioritystar.Figure("fig2+5", prioritystar.Standard)
//	res, _ := exp.Run()
//	fmt.Println(res.Table(prioritystar.MetricReception)) // Fig. 2
//	fmt.Println(res.Table(prioritystar.MetricBroadcast)) // Fig. 5
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper's claims.
package prioritystar

import (
	"prioritystar/internal/analysis"
	"prioritystar/internal/balance"
	"prioritystar/internal/cli"
	"prioritystar/internal/core"
	"prioritystar/internal/fault"
	"prioritystar/internal/finite"
	"prioritystar/internal/forecast"
	"prioritystar/internal/obs"
	"prioritystar/internal/serve"
	"prioritystar/internal/sim"
	"prioritystar/internal/spec"
	"prioritystar/internal/static"
	"prioritystar/internal/surrogate"
	"prioritystar/internal/sweep"
	"prioritystar/internal/torus"
	"prioritystar/internal/traffic"
)

// Topology types.
type (
	// Shape is an n1 x n2 x ... x nd torus topology.
	Shape = torus.Shape
	// Node identifies a torus node.
	Node = torus.Node
	// Dir is a ring direction (Plus or Minus).
	Dir = torus.Dir
	// LinkID identifies a directed link.
	LinkID = torus.LinkID
)

// Scheme and traffic types.
type (
	// Scheme is a resolved routing configuration: rotation vector plus
	// priority discipline.
	Scheme = core.Scheme
	// Discipline selects the queueing priority structure.
	Discipline = core.Discipline
	// Rotation selects the ending-dimension policy.
	Rotation = core.Rotation
	// TreeNode is one node of an enumerated STAR broadcast tree.
	TreeNode = core.TreeNode
	// Rates holds per-node broadcast/unicast arrival rates.
	Rates = traffic.Rates
	// LengthDist is a packet-length distribution.
	LengthDist = traffic.LengthDist
	// DistanceModel selects exact or paper-floor unicast distances.
	DistanceModel = balance.DistanceModel
	// Vector is an ending-dimension probability vector with feasibility.
	Vector = balance.Vector
)

// Simulation and experiment types.
type (
	// SimConfig configures one simulation run.
	SimConfig = sim.Config
	// SimResult holds one run's measured statistics.
	SimResult = sim.Result
	// SimRunner executes simulations while reusing internal buffers
	// across runs; give each worker goroutine its own.
	SimRunner = sim.Runner
	// SimBatch describes R replications of one operating point (a shared
	// config template plus one seed per replication) for SimulateBatch.
	SimBatch = sim.Batch
	// SimBatchRunner executes batches while reusing engine buffers across
	// calls — the batched analogue of SimRunner.
	SimBatchRunner = sim.BatchRunner
	// RepResult is one replication's outcome within a batch.
	RepResult = sim.RepResult
	// DeliverEvent is the payload of SimConfig.OnDeliver tracing hooks.
	DeliverEvent = sim.DeliverEvent
	// Probe observes engine events when set on SimConfig.Probe; nil costs
	// nothing on the hot path.
	Probe = obs.Probe
	// StandardProbes bundles the link-load, occupancy, and service-share
	// probes behind one Probe.
	StandardProbes = obs.Standard
	// RunManifest identifies a recorded run (shape, scheme, seed, rates,
	// horizon, git revision) alongside metrics and trace files.
	RunManifest = obs.Manifest
	// CappedMetric selects the delay a DelayCappedThroughput search bounds.
	CappedMetric = sweep.CappedMetric
	// Experiment is a replicated sweep over throughput factors.
	Experiment = sweep.Experiment
	// ExperimentResult is a completed sweep.
	ExperimentResult = sweep.Result
	// SchemeSpec names a scheme configuration under comparison.
	SchemeSpec = sweep.SchemeSpec
	// Metric selects which aggregate a table reports.
	Metric = sweep.Metric
	// Scale selects predefined-experiment effort.
	Scale = sweep.Scale
	// FaultSchedule describes deterministic link/node failures to inject
	// into a run (SimConfig.Faults, Experiment.Faults).
	FaultSchedule = fault.Schedule
	// Guard configures the divergence watchdog and wall-clock limits.
	Guard = sim.Guard
	// RunStatus reports how a simulation ended (ok, truncated, diverged,
	// or timeout).
	RunStatus = sim.Status
)

// Ring directions.
const (
	Plus  = torus.Plus
	Minus = torus.Minus
)

// Priority disciplines.
const (
	FCFS       = core.FCFS
	TwoLevel   = core.TwoLevel
	ThreeLevel = core.ThreeLevel
)

// Rotation policies.
const (
	BalancedRotation = core.BalancedRotation
	UniformRotation  = core.UniformRotation
	FixedEnding      = core.FixedEnding
)

// Distance models for Eq. 4 balancing.
const (
	ExactDistance      = balance.ExactDistance
	PaperFloorDistance = balance.PaperFloorDistance
)

// Experiment scales.
const (
	Quick    = sweep.Quick
	Standard = sweep.Standard
	Full     = sweep.Full
)

// Run statuses.
const (
	StatusOK        = sim.StatusOK
	StatusTruncated = sim.StatusTruncated
	StatusDiverged  = sim.StatusDiverged
	StatusTimeout   = sim.StatusTimeout
)

// Table metrics.
const (
	MetricReception  = sweep.MetricReception
	MetricBroadcast  = sweep.MetricBroadcast
	MetricUnicast    = sweep.MetricUnicast
	MetricHighWait   = sweep.MetricHighWait
	MetricLowWait    = sweep.MetricLowWait
	MetricAvgUtil    = sweep.MetricAvgUtil
	MetricMaxDimUtil = sweep.MetricMaxDimUtil
)

// Predefined scheme specifications (the paper's comparisons).
var (
	PrioritySTARSpec  = sweep.PrioritySTARSpec
	PrioritySTAR3Spec = sweep.PrioritySTAR3Spec
	FCFSDirectSpec    = sweep.FCFSDirectSpec
	DimOrderSpec      = sweep.DimOrderSpec
	SeparateSpec      = sweep.SeparateSpec
	SeparatePrioSpec  = sweep.SeparatePrioSpec
)

// NewTorus constructs a general n1 x n2 x ... x nd torus.
func NewTorus(dims ...int) (*Shape, error) { return torus.New(dims...) }

// NAryDCube constructs the symmetric n-ary d-cube.
func NAryDCube(n, d int) (*Shape, error) { return torus.NAryDCube(n, d) }

// Hypercube constructs the d-dimensional binary hypercube (2-ary d-cube).
func Hypercube(d int) (*Shape, error) { return torus.Hypercube(d) }

// RatesForRho returns the arrival rates that produce throughput factor rho
// on shape s when broadcastFrac of the transmission load comes from
// broadcasts and packets have the given mean length.
func RatesForRho(s *Shape, rho, broadcastFrac, meanLen float64, m DistanceModel) (Rates, error) {
	return traffic.RatesForRho(s, rho, broadcastFrac, meanLen, m)
}

// FixedLength returns the constant packet-length distribution.
func FixedLength(n int) LengthDist { return traffic.FixedLength(n) }

// GeometricLength returns the geometric packet-length distribution with the
// given mean.
func GeometricLength(mean float64) LengthDist { return traffic.GeometricLength(mean) }

// NewScheme resolves an arbitrary (discipline, rotation) combination.
func NewScheme(s *Shape, d Discipline, r Rotation, rates Rates, m DistanceModel) (*Scheme, error) {
	return core.NewScheme(s, d, r, rates, m)
}

// PrioritySTAR builds the paper's proposed scheme: balanced rotation with
// two-level priority.
func PrioritySTAR(s *Shape, rates Rates, m DistanceModel) (*Scheme, error) {
	return core.PrioritySTAR(s, rates, m)
}

// PrioritySTAR3 builds the three-level heterogeneous variant of Section 4.
func PrioritySTAR3(s *Shape, rates Rates, m DistanceModel) (*Scheme, error) {
	return core.PrioritySTAR3(s, rates, m)
}

// STARFCFS builds the FCFS baseline with balanced rotation (the FCFS
// generalization of the direct scheme in [12]).
func STARFCFS(s *Shape, rates Rates, m DistanceModel) (*Scheme, error) {
	return core.STARFCFS(s, rates, m)
}

// DimOrderFCFS builds classical dimension-ordered FCFS broadcast.
func DimOrderFCFS(s *Shape) (*Scheme, error) { return core.DimOrderFCFS(s) }

// Simulate executes one simulation run.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimulateBatch executes R replications of one operating point, sharing the
// immutable topology and scheme tables across replications and sharding
// them over worker goroutines. Each replication's Result is bit-identical
// to a Simulate call with the same config and seed.
func SimulateBatch(b SimBatch) ([]RepResult, error) { return sim.RunBatch(b) }

// DefaultGuard returns watchdog thresholds sized for shape s: runs whose
// backlog crosses a multiple of the link count, or grows monotonically
// across consecutive windows, end early with StatusDiverged.
func DefaultGuard(s *Shape) Guard { return sim.DefaultGuard(s) }

// ParseFaults parses the CLI fault-schedule syntax, e.g.
// "perm:2,link:5,node:3,trans:500/50,seed:7". Empty input yields a nil
// (fault-free) schedule.
func ParseFaults(s string) (*FaultSchedule, error) { return cli.ParseFaults(s) }

// NewStandardProbes builds the standard observability bundle for one run
// measuring [warmup, warmup+measure).
func NewStandardProbes(s *Shape, warmup, measure int64) *StandardProbes {
	return obs.NewStandard(s, warmup, measure)
}

// Figure returns a predefined experiment reproducing the given paper figure
// (see FigureIDs for the catalogue).
func Figure(id string, scale Scale) (*Experiment, error) { return sweep.Figure(id, scale) }

// FigureIDs lists the predefined experiment IDs.
func FigureIDs() []string { return sweep.FigureIDs() }

// BalanceBroadcastOnly solves the paper's Eq. (2) for shape s.
func BalanceBroadcastOnly(s *Shape) (Vector, error) { return balance.BroadcastOnly(s) }

// BalanceHeterogeneous solves the paper's Eq. (4) for the given traffic.
func BalanceHeterogeneous(s *Shape, lambdaB, lambdaR float64, m DistanceModel) (Vector, error) {
	return balance.Heterogeneous(s, lambdaB, lambdaR, m)
}

// MaxThroughput predicts the maximum throughput factor achievable with
// ending-dimension vector x under the given traffic mix.
func MaxThroughput(s *Shape, x []float64, lambdaB, lambdaR float64, m DistanceModel) float64 {
	return balance.MaxThroughput(s, x, lambdaB, lambdaR, m)
}

// BroadcastTree enumerates the spanning tree of one STAR broadcast (used by
// visualizations and tests; pass a nil rng for the deterministic split).
func BroadcastTree(sch *Scheme, source Node, ending int) []TreeNode {
	return core.BroadcastTree(sch, source, ending, nil)
}

// Delay metrics for DelayCappedThroughput.
const (
	CapReception = sweep.CapReception
	CapBroadcast = sweep.CapBroadcast
	CapUnicast   = sweep.CapUnicast
)

// DelayCappedThroughput estimates the largest throughput factor at which a
// scheme keeps the chosen average delay at or below maxDelay (the Section
// 3.2 delay-budget comparison).
func DelayCappedThroughput(dims []int, spec SchemeSpec, broadcastFrac float64,
	m DistanceModel, metric CappedMetric, maxDelay float64,
	probeSlots int64, seed uint64, lo, hi, tol float64) (float64, error) {
	return sweep.DelayCappedThroughput(dims, spec, broadcastFrac, m, metric, maxDelay,
		probeSlots, seed, lo, hi, tol)
}

// StabilitySearch estimates a scheme's maximum stable throughput factor by
// bisection with short probe simulations.
func StabilitySearch(dims []int, spec SchemeSpec, broadcastFrac float64, m DistanceModel,
	probeSlots int64, reps int, seed uint64, lo, hi, tol float64) (float64, error) {
	return sweep.StabilitySearch(dims, spec, broadcastFrac, m, probeSlots, reps, seed, lo, hi, tol)
}

// ReceptionLowerBound returns the oblivious lower bound Omega(d + 1/(1-rho))
// on average reception delay, instantiated for shape s.
func ReceptionLowerBound(s *Shape, rho float64) float64 {
	return analysis.ReceptionLowerBound(s, rho)
}

// BroadcastLowerBound returns the corresponding broadcast-delay bound.
func BroadcastLowerBound(s *Shape, rho float64) float64 {
	return analysis.BroadcastLowerBound(s, rho)
}

// MD1Wait is the M/D/1 mean waiting time rho/(2(1-rho)), the queueing term
// of the paper's delay bounds.
func MD1Wait(rho float64) float64 { return analysis.MD1Wait(rho) }

// Static communication tasks (the paper's introduction: single broadcast,
// multinode broadcast, total exchange).
type (
	// StaticTask identifies a static communication task.
	StaticTask = static.Task
	// StaticResult reports a static task's makespan against its bound.
	StaticResult = static.Result
)

// The static tasks.
const (
	SingleBroadcast    = static.SingleBroadcast
	MultinodeBroadcast = static.MultinodeBroadcast
	TotalExchange      = static.TotalExchange
)

// RunStatic executes a static communication task as a slot-0 impulse and
// measures its makespan against the classical lower bound.
func RunStatic(s *Shape, sch *Scheme, t StaticTask, seed uint64) (*StaticResult, error) {
	return static.Run(s, sch, t, seed)
}

// StaticLowerBound returns the diameter/bandwidth makespan bound for a
// static task on shape s.
func StaticLowerBound(s *Shape, t StaticTask) int64 { return static.LowerBound(s, t) }

// Finite-buffer engine (Section 3.1's virtual-channel deadlock dimension).
type (
	// FiniteConfig configures a finite-buffer, credit-backpressured run.
	FiniteConfig = finite.Config
	// FiniteResult reports deliveries, delays, and deadlock detection.
	FiniteResult = finite.Result
	// Flow is a preloaded unicast demand for finite-buffer runs.
	Flow = finite.Flow
)

// SimulateFinite runs the finite-buffer engine: with VCs = 2 the SDC
// dateline rule keeps wraparound rings deadlock-free; with VCs = 1 the
// engine detects the classical store-and-forward deadlock.
func SimulateFinite(cfg FiniteConfig) (*FiniteResult, error) { return finite.Run(cfg) }

// Service layer (the starsimd daemon and its client; see internal/serve).
type (
	// ServerConfig tunes the simulation-as-a-service daemon.
	ServerConfig = serve.Config
	// Server is the daemon: worker pool, FIFO job queue with backpressure,
	// and a content-addressed result cache keyed by spec fingerprints.
	Server = serve.Server
	// ServeClient talks to a running daemon over HTTP, retrying transient
	// failures and reconnecting broken watch streams per its RetryPolicy.
	ServeClient = serve.Client
	// RetryPolicy shapes the client's self-healing behavior (capped
	// exponential backoff with full jitter, honoring Retry-After).
	RetryPolicy = serve.RetryPolicy
	// JobStatus is one job's wire-format status.
	JobStatus = serve.JobStatus
	// ExperimentSpec is the portable JSON experiment document shared by
	// spec files, the daemon API, and psctl.
	ExperimentSpec = spec.Experiment
)

// Job lifecycle states.
const (
	JobQueued   = serve.StateQueued
	JobRunning  = serve.StateRunning
	JobDone     = serve.StateDone
	JobFailed   = serve.StateFailed
	JobCanceled = serve.StateCanceled
	// JobQuarantined marks a job that exhausted its retry budget; the
	// daemon keeps it visible but never retries it again.
	JobQuarantined = serve.StateQuarantined
)

// EngineVersion identifies the simulation engine's result semantics; it is
// folded into every spec fingerprint, so bumping it invalidates caches.
const EngineVersion = sim.EngineVersion

// NewServer builds a daemon from cfg: the cache is loaded and the worker
// pool starts immediately; call Start to bind the HTTP listener (or
// Handler to embed it).
func NewServer(cfg ServerConfig) (*Server, error) { return serve.New(cfg) }

// NewServeClient builds a client for a daemon at addr (host:port or URL)
// with DefaultRetryPolicy installed.
func NewServeClient(addr string) *ServeClient { return serve.NewClient(addr) }

// DefaultRetryPolicy is the self-healing policy NewServeClient installs:
// 4 retries under capped, fully-jittered exponential backoff.
func DefaultRetryPolicy() RetryPolicy { return serve.DefaultRetryPolicy() }

// IsQueueFull reports whether a client error is the daemon's 429
// backpressure signal, so callers can retry with a delay.
func IsQueueFull(err error) bool { return serve.IsQueueFull(err) }

// Fingerprint returns the experiment's content address: a hash of the
// canonical spec document plus EngineVersion that identifies what a
// simulation will compute. Labels (ID, Title, Notes) and execution knobs
// (Workers, Checkpoint, Progress, wall-clock timeouts) do not affect it.
func Fingerprint(e *Experiment) (string, error) { return spec.Fingerprint(e) }

// SpecFromExperiment converts a resolved experiment to its portable spec
// document (for submission to a daemon or saving to a file).
func SpecFromExperiment(e *Experiment) *ExperimentSpec { return spec.FromSweep(e) }

// Surrogate serving (DESIGN.md §4h): a daemon may answer "mode": "approx"
// submissions from the analytic model plus interpolation over its cache of
// exact results, with explicit error bounds, instead of simulating.
type (
	// SurrogateIndex is the family-keyed anchor table built from exact
	// result documents; feed it with AddResult/AddExact.
	SurrogateIndex = surrogate.Index
	// Surrogate answers sweep experiments from a SurrogateIndex, falling
	// back (by returning an error from Evaluate) when it cannot certify
	// the requested tolerance.
	Surrogate = surrogate.Surrogate
	// Forecaster tracks queue-pressure trajectories (EWMA rates + Holt
	// depth trend) and drives predictive admission.
	Forecaster = forecast.Forecaster
	// ForecastConfig tunes a Forecaster; the zero value uses defaults.
	ForecastConfig = forecast.Config
)

// NewSurrogateIndex returns an empty anchor index.
func NewSurrogateIndex() *SurrogateIndex { return surrogate.NewIndex() }

// NewSurrogate builds a surrogate over ix with the default tolerance.
func NewSurrogate(ix *SurrogateIndex) *Surrogate { return surrogate.New(ix) }

// NewForecaster builds a queue-pressure forecaster.
func NewForecaster(cfg ForecastConfig) *Forecaster { return forecast.New(cfg) }

// SurrogateEligible reports (as an error with the reason) whether an
// experiment can be answered approximately at all: fault schedules,
// result-affecting guards, bounded backlogs, and saturated loads are
// ineligible and should be submitted in exact mode.
func SurrogateEligible(e *Experiment) error { return surrogate.Eligible(e) }
