module prioritystar

go 1.22
